package ooc

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gep/internal/core"
	"gep/internal/matrix"
)

// TestXXHashVectors pins the XXH64 implementation to the reference
// vectors of the xxHash specification (seed 0).
func TestXXHashVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xEF46DB3751D8E999},
		{"a", 0xD24EC4F1A98C6E5B},
		{"abc", 0x44BC2CF5AD770999},
		{"message digest", 0x066ED728FCEEB3BE},
		{"abcdefghijklmnopqrstuvwxyz", 0xCFE1F278FA89835C},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", 0xAAA46907D3047814},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", 0xE04A477F19EE145D},
	}
	for _, tc := range cases {
		if got := Checksum([]byte(tc.in)); got != tc.want {
			t.Errorf("Checksum(%q) = %016x, want %016x", tc.in, got, tc.want)
		}
	}
}

// TestZRLERoundTrip: compressible, incompressible, and structured
// payloads all survive encode→decode bit-exactly; incompressible data
// is refused (nil) rather than inflated.
func TestZRLERoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(words int, f func(i int) uint64) []byte {
		b := make([]byte, words*8)
		for i := 0; i < words; i++ {
			putWord(b[i*8:], f(i))
		}
		return b
	}
	cases := map[string][]byte{
		"zeros": mk(512, func(int) uint64 { return 0 }),
		"banded": mk(512, func(i int) uint64 {
			if i%16 < 3 {
				return rng.Uint64()
			}
			return 0
		}),
		"tail-zero": mk(512, func(i int) uint64 {
			if i < 100 {
				return uint64(i) + 1
			}
			return 0
		}),
		"empty": {},
	}
	for name, src := range cases {
		enc := zrleEncode(src)
		if enc == nil {
			if name == "empty" {
				continue // nothing to win on an empty payload
			}
			t.Fatalf("%s: incompressible?", name)
		}
		if len(enc) >= len(src) {
			t.Fatalf("%s: encoding grew: %d >= %d", name, len(enc), len(src))
		}
		dst := make([]byte, len(src))
		if err := zrleDecode(dst, enc); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
	dense := mk(512, func(int) uint64 { return rng.Uint64() | 1 })
	if enc := zrleEncode(dense); enc != nil {
		t.Fatalf("dense random payload compressed to %d bytes; want refusal", len(enc))
	}
}

func putWord(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// durableCfg is the shared geometry of the durability tests: 4 KiB
// tiles that map 1:1 onto stripe units, so tile i lives wholly in
// stripe i mod Stripes.
func durableCfg(stripes int) Config {
	const side = 16
	return Config{
		PageSize:   512,
		CacheSize:  1 << 16,
		Stripes:    stripes,
		StripeUnit: side * side * 8,
	}
}

// TestChecksumCorruptionPerStripe flips one bit in each stripe file in
// turn and asserts that faulting the damaged tile yields ErrCorrupt
// carrying the right tile identity (offset, side, stripe), and that a
// re-fault after repairing the byte succeeds with intact data.
func TestChecksumCorruptionPerStripe(t *testing.T) {
	const stripes = 4
	const side = 16
	unit := int64(side * side * 8)
	dir := filepath.Join(t.TempDir(), "st")
	s, err := CreateAt(dir, durableCfg(stripes))
	if err != nil {
		t.Fatal(err)
	}
	fill := func(ti int, tl *Tile) {
		for i := range tl.Data {
			tl.Data[i] = float64(ti*100000 + i)
		}
	}
	for ti := 0; ti < 2*stripes; ti++ {
		tl, err := s.PinTileZero(int64(ti)*unit, side)
		if err != nil {
			t.Fatal(err)
		}
		fill(ti, tl)
		s.UnpinTile(tl, true)
	}
	if err := s.Close(); err != nil { // applies everything home
		t.Fatal(err)
	}

	for k := 0; k < stripes; k++ {
		off := int64(k) * unit // tile k's home is stripe k
		phys := (off / unit) / stripes * unit
		path := filepath.Join(dir, fmt.Sprintf("stripe-%03d.dat", k))
		flip := func() {
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			var b [1]byte
			if _, err := f.ReadAt(b[:], phys+123); err != nil {
				t.Fatal(err)
			}
			b[0] ^= 0x40
			if _, err := f.WriteAt(b[:], phys+123); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
		flip()
		s2, err := Open(dir, Config{PageSize: 512, CacheSize: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		_, err = s2.PinTile(off, side)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("stripe %d: corrupted tile pin = %v, want ErrCorrupt", k, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("stripe %d: error %v carries no *CorruptError", k, err)
		}
		if ce.Off != off || ce.Side != side || ce.Stripe != k {
			t.Fatalf("stripe %d: corrupt identity = {off %d side %d stripe %d}, want {%d %d %d}",
				k, ce.Off, ce.Side, ce.Stripe, off, side, k)
		}
		if st := s2.Stats(); st.ChecksumFail == 0 {
			t.Fatal("checksum failure not counted")
		}
		flip() // repair
		tl, err := s2.PinTile(off, side)
		if err != nil {
			t.Fatalf("stripe %d: re-fault after repair: %v", k, err)
		}
		if tl.Data[123/8] != float64(k*100000+123/8) {
			t.Fatalf("stripe %d: repaired tile holds wrong data", k)
		}
		s2.UnpinTile(tl, false)
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalTruncationDiscardsTornTail: a crash can tear the final
// journal record. The scanner must discard the torn tail, keep every
// committed sync point, and Recover must restore exactly the last
// committed state.
func TestJournalTruncationDiscardsTornTail(t *testing.T) {
	const side = 16
	unit := int64(side * side * 8)
	dir := filepath.Join(t.TempDir(), "st")
	s, err := CreateAt(dir, durableCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	write := func(off int64, v float64) {
		tl, err := s.PinTileZero(off, side)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tl.Data {
			tl.Data[i] = v
		}
		s.UnpinTile(tl, true)
	}
	write(0, 1)
	if err := s.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	// An uncommitted epoch: new content for tile 0, synced to the
	// journal but never committed.
	write(0, 2)
	if err := s.SyncTiles(); err != nil {
		t.Fatal(err)
	}
	s.Abandon()

	// Tear the final record: chop the journal mid-payload.
	jpath := filepath.Join(dir, journalName)
	st, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jpath, st.Size()-unit/2); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{PageSize: 512, CacheSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if info.Frontier != 1 {
		t.Fatalf("frontier = %d, want 1 (the committed sync point)", info.Frontier)
	}
	if !info.Torn {
		t.Fatal("torn tail not reported")
	}
	tl, err := s2.PinTile(0, side)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Data[0] != 1 {
		t.Fatalf("recovered tile holds %g, want the committed value 1", tl.Data[0])
	}
	s2.UnpinTile(tl, false)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCommittedUnappliedReplays exercises the crash window
// between COMMIT and apply: a committed record whose payload never
// reached its home slot must be replayed home by Recover (verified by
// checksum), and the frontier must advance to the committed tag.
func TestJournalCommittedUnappliedReplays(t *testing.T) {
	const side = 16
	unit := int64(side * side * 8)
	dir := filepath.Join(t.TempDir(), "st")
	s, err := CreateAt(dir, durableCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.PinTileZero(0, side)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tl.Data {
		tl.Data[i] = 1
	}
	s.UnpinTile(tl, true)
	if err := s.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	// Hand-append a committed epoch that is never applied: new payload
	// for tile 0, then COMMIT{2}, then crash.
	payload := make([]byte, unit)
	for i := 0; i < int(unit)/8; i++ {
		putWord(payload[i*8:], 0x4000000000000000) // float64(2.0)
	}
	sum := Checksum(payload)
	if _, err := s.jr.appendTile(s, 0, side, 0, sum, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.jr.appendCommit(s, 2); err != nil {
		t.Fatal(err)
	}
	s.Abandon()

	s2, err := Open(dir, Config{PageSize: 512, CacheSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if info.Frontier != 2 || info.Tiles != 1 {
		t.Fatalf("recovery = %+v, want frontier 2 with 1 replayed tile", info)
	}
	tl2, err := s2.PinTile(0, side)
	if err != nil {
		t.Fatal(err)
	}
	if tl2.Data[7] != 2 {
		t.Fatalf("replayed tile holds %g, want 2", tl2.Data[7])
	}
	s2.UnpinTile(tl2, false)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncReportsEveryStripeFailure is the regression test for the
// drop-all-but-first error harvesting: with faults injected on every
// transfer and dirty tiles write-behind-evicted on two different
// stripes, the sync point must report BOTH failures (errors.Join), not
// just the first.
func TestSyncReportsEveryStripeFailure(t *testing.T) {
	const side = 16
	unit := int64(side * side * 8)
	s, err := Create(t.TempDir(), Config{
		PageSize:   512,
		CacheSize:  unit, // 1-tile budget: every new pin evicts
		Stripes:    2,
		StripeUnit: int(unit),
		FaultEvery: 1, MaxRetries: -1, // every raw transfer fails, no retry
	})
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 3; ti++ {
		tl, err := s.PinTileZero(int64(ti)*unit, side) // no read: survives FaultEvery=1
		if err != nil {
			t.Fatal(err)
		}
		tl.Data[0] = float64(ti + 1)
		s.UnpinTile(tl, true)
	}
	err = s.SyncTiles()
	if err == nil {
		t.Fatal("sync with a broken disk returned nil")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("sync error %v does not wrap ErrInjected", err)
	}
	var multi interface{ Unwrap() []error }
	if !errors.As(err, &multi) {
		t.Fatalf("sync error %v is not a joined multi-error", err)
	}
	if got := len(multi.Unwrap()); got < 2 {
		t.Fatalf("sync reported %d error(s), want every failed stripe (>= 2)", got)
	}
	s.Abandon() // disk is broken; a Close would add noise
}

// TestStripedRunBitIdentical: RunIGEP over a striped, compressed,
// durable, checkpointed store — tiles deliberately spanning stripe
// units — is Float64bits-identical to the in-core fused engine.
func TestStripedRunBitIdentical(t *testing.T) {
	const n, side = 32, 8
	in := randomInput(n, 99)
	want := in.Clone()
	core.RunIGEP[float64](want, core.GaussElim[float64]{}, core.Gaussian{},
		core.WithBaseSize[float64](side))

	dir := filepath.Join(t.TempDir(), "st")
	s, err := CreateAt(dir, Config{
		PageSize:   512,
		CacheSize:  4 * side * side * 8,
		Stripes:    3,
		StripeUnit: 128, // tiles span many units across all stripes
		Compress:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(s, n, 0, MortonTiledLayout(side))
	if err := m.LoadTiles(in); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	if err := RunIGEP(m, core.GaussElim[float64]{}, core.Gaussian{},
		RunOptions{Prefetch: true, CheckpointEvery: 3}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Unload()
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "striped-durable", want, got)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverResumeBitIdentical is the end-to-end crash drill: a
// checkpointed run stopped cold mid-computation (StopAfter + Abandon),
// reopened, recovered, and resumed from the reported frontier must
// produce a bit-identical result — same Digest, same Unload bits — as
// an uninterrupted run.
func TestRecoverResumeBitIdentical(t *testing.T) {
	const n, side = 32, 8
	in := randomInput(n, 123)
	opts := RunOptions{CheckpointEvery: 5}

	// Uninterrupted reference run.
	dirA := filepath.Join(t.TempDir(), "a")
	sa, err := CreateAt(dirA, durableCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	ma := NewMatrix(sa, n, 0, MortonTiledLayout(side))
	if err := ma.LoadTiles(in); err != nil {
		t.Fatal(err)
	}
	if err := sa.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	if err := RunIGEP(ma, core.LUFactor[float64]{}, core.LU{}, opts); err != nil {
		t.Fatal(err)
	}
	wantDigest, err := ma.Digest()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ma.Unload()
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}

	// Crashed run: stop cold after 13 blocks (last checkpoint at 10).
	dirB := filepath.Join(t.TempDir(), "b")
	sb, err := CreateAt(dirB, durableCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	mb := NewMatrix(sb, n, 0, MortonTiledLayout(side))
	if err := mb.LoadTiles(in); err != nil {
		t.Fatal(err)
	}
	if err := sb.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	stopOpts := opts
	stopOpts.StopAfter = 13
	if err := RunIGEP(mb, core.LUFactor[float64]{}, core.LU{}, stopOpts); !errors.Is(err, ErrStopped) {
		t.Fatalf("drill run = %v, want ErrStopped", err)
	}
	sb.Abandon()

	// Recover and resume.
	sb2, err := Open(dirB, Config{PageSize: 512, CacheSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	info, err := sb2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if info.Frontier != 10 {
		t.Fatalf("frontier = %d, want 10 (checkpoints every 5, stopped at 13)", info.Frontier)
	}
	mb2 := NewMatrix(sb2, n, 0, MortonTiledLayout(side))
	resumeOpts := opts
	resumeOpts.StartBlock = info.Frontier
	if err := RunIGEP(mb2, core.LUFactor[float64]{}, core.LU{}, resumeOpts); err != nil {
		t.Fatal(err)
	}
	gotDigest, err := mb2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != wantDigest {
		t.Fatalf("resumed digest %016x != uninterrupted %016x", gotDigest, wantDigest)
	}
	got, err := mb2.Unload()
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "recover-resume", want, got)
	if err := sb2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompressionSplitsLogicalPhysical: a banded LU input keeps most
// tiles all-zero, so the compressed physical traffic must be well
// under the logical traffic — and the run still bit-matches the
// uncompressed one.
func TestCompressionSplitsLogicalPhysical(t *testing.T) {
	const n, side = 64, 8
	in := bandedInput(n, side, 2)
	run := func(compress bool) (*matrix.Dense[float64], Stats) {
		s, err := Create(t.TempDir(), Config{
			PageSize:  512,
			CacheSize: 4 * side * side * 8,
			Compress:  compress,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		m := NewMatrix(s, n, 0, MortonTiledLayout(side))
		if err := m.LoadTiles(in); err != nil {
			t.Fatal(err)
		}
		s.ResetStats()
		if err := RunIGEP(m, core.LUFactor[float64]{}, core.LU{}, RunOptions{}); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		out, err := m.Unload()
		if err != nil {
			t.Fatal(err)
		}
		return out, st
	}
	plain, pst := run(false)
	packed, cst := run(true)
	bitsEqual(t, "compressed-vs-raw", plain, packed)
	if pst.BytesLogical != pst.BytesPhysical {
		t.Fatalf("uncompressed store split traffic: logical %d physical %d",
			pst.BytesLogical, pst.BytesPhysical)
	}
	// LU fill-in widens the band to 2×, but the fully-zero corner tiles
	// alone must save well over 10% of the physical traffic.
	if cst.BytesPhysical*10 >= cst.BytesLogical*9 {
		t.Fatalf("banded input barely compressed: logical %d physical %d",
			cst.BytesLogical, cst.BytesPhysical)
	}
	if cst.TileReads != pst.TileReads || cst.TileWrites != pst.TileWrites {
		t.Fatalf("compression changed the §4.1 transfer counts: %d/%d vs %d/%d",
			cst.TileReads, cst.TileWrites, pst.TileReads, pst.TileWrites)
	}
}

// bandedInput builds a diagonally dominant matrix that is zero outside
// a band of the given half-width in tiles.
func bandedInput(n, side, halfTiles int) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(5))
	m := matrix.NewSquare[float64](n)
	band := halfTiles * side
	m.Apply(func(i, j int, _ float64) float64 {
		d := i - j
		if d < 0 {
			d = -d
		}
		if d > band {
			return 0
		}
		if i == j {
			return float64(n) + rng.Float64()
		}
		return rng.NormFloat64()
	})
	return m
}

// TestOpenValidation: geometry disagreements and double-create are
// errors, not corruption.
func TestOpenValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "st")
	s, err := CreateAt(dir, durableCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateAt(dir, durableCfg(2)); err == nil {
		t.Fatal("CreateAt over an existing store succeeded")
	}
	if _, err := Open(dir, Config{PageSize: 512, CacheSize: 1 << 16, Stripes: 3}); err == nil {
		t.Fatal("Open with a wrong stripe count succeeded")
	}
	s2, err := Open(dir, Config{PageSize: 512, CacheSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s2.files); got != 2 {
		t.Fatalf("Open adopted %d stripes, want 2 from the journal header", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRules: Checkpoint needs a durable store and no pins.
func TestCheckpointRules(t *testing.T) {
	s := newTestStore(t, 64, 4096)
	if err := s.Checkpoint(1); !errors.Is(err, errNotDurable) {
		t.Fatalf("Checkpoint on a temp store = %v, want errNotDurable", err)
	}
	if err := RunIGEP(NewMatrix(s, 8, 0, MortonTiledLayout(4)),
		core.MinPlus[float64]{}, core.Full{}, RunOptions{CheckpointEvery: 1}); !errors.Is(err, errNotDurable) {
		t.Fatalf("checkpointed RunIGEP on a temp store = %v, want errNotDurable", err)
	}

	dir := filepath.Join(t.TempDir(), "st")
	d, err := CreateAt(dir, durableCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := d.PinTileZero(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(1); err == nil {
		t.Fatal("Checkpoint with a pinned tile succeeded")
	}
	d.UnpinTile(tl, true)
	if err := d.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if d.Frontier() != 1 {
		t.Fatalf("frontier = %d, want 1", d.Frontier())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStressStripedStore churns a small striped, compressed, durable
// store through the full API surface — pins, zero-pins, prefetch,
// element access, sync points, checkpoints — under the race detector,
// against an in-RAM model of expected contents.
func TestStressStripedStore(t *testing.T) {
	const side = 8
	tileBytes := int64(side * side * 8)
	const tiles = 24
	dir := filepath.Join(t.TempDir(), "st")
	s, err := CreateAt(dir, Config{
		PageSize:   512,
		CacheSize:  3 * tileBytes, // heavy eviction churn
		Stripes:    4,
		StripeUnit: 512, // tiles span units
		Compress:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := make([][]float64, tiles)
	rng := rand.New(rand.NewSource(31337))
	version := 0
	for iter := 0; iter < 3000; iter++ {
		ti := rng.Intn(tiles)
		off := int64(ti) * tileBytes
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // pin, verify, mutate
			tl, err := s.PinTile(off, side)
			if err != nil {
				t.Fatalf("iter %d: pin %d: %v", iter, ti, err)
			}
			if model[ti] == nil {
				for _, v := range tl.Data {
					if v != 0 {
						t.Fatalf("iter %d: unwritten tile %d reads %g", iter, ti, v)
					}
				}
			} else {
				for i, v := range tl.Data {
					if v != model[ti][i] {
						t.Fatalf("iter %d: tile %d cell %d = %g, want %g", iter, ti, i, v, model[ti][i])
					}
				}
			}
			version++
			if model[ti] == nil {
				model[ti] = make([]float64, side*side)
			}
			k := rng.Intn(side * side)
			tl.Data[k] = float64(version)
			model[ti][k] = float64(version)
			s.UnpinTile(tl, true)
		case 4: // fresh overwrite
			tl, err := s.PinTileZero(off, side)
			if err != nil {
				t.Fatalf("iter %d: zero-pin %d: %v", iter, ti, err)
			}
			version++
			if model[ti] == nil {
				model[ti] = make([]float64, side*side)
			}
			for i := range tl.Data {
				tl.Data[i] = float64(version)
				model[ti][i] = float64(version)
			}
			s.UnpinTile(tl, true)
		case 5: // prefetch (speculative, no observable effect)
			s.PrefetchTile(off, side)
		case 6: // element read through whatever path covers it
			k := rng.Intn(side * side)
			want := 0.0
			if model[ti] != nil {
				want = model[ti][k]
			}
			if got := s.ReadFloat(off + int64(k)*8); got != want {
				t.Fatalf("iter %d: element read tile %d cell %d = %g, want %g", iter, ti, k, got, want)
			}
		case 7: // element write
			k := rng.Intn(side * side)
			version++
			if model[ti] == nil {
				model[ti] = make([]float64, side*side)
			}
			s.WriteFloat(off+int64(k)*8, float64(version))
			model[ti][k] = float64(version)
		case 8:
			if err := s.SyncTiles(); err != nil {
				t.Fatalf("iter %d: sync: %v", iter, err)
			}
		case 9:
			if iter%7 == 0 {
				if err := s.Checkpoint(int64(iter)); err != nil {
					t.Fatalf("iter %d: checkpoint: %v", iter, err)
				}
			}
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	// Every tile's final state survives a close/open cycle.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Config{PageSize: 512, CacheSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < tiles; ti++ {
		if model[ti] == nil {
			continue
		}
		tl, err := s2.PinTile(int64(ti)*tileBytes, side)
		if err != nil {
			t.Fatalf("reopen pin %d: %v", ti, err)
		}
		for i, v := range tl.Data {
			if v != model[ti][i] {
				t.Fatalf("reopen tile %d cell %d = %g, want %g", ti, i, v, model[ti][i])
			}
		}
		s2.UnpinTile(tl, false)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzJournalReplay drives the journal scanner over arbitrary bytes:
// it must never panic, and whatever it accepts must satisfy the
// structural invariants Recover depends on.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeJournalHeader(-1, 2, 64, nil, nil))
	// A valid journal with one committed epoch, as a structured seed.
	hdr := encodeJournalHeader(3, 1, 64, []int64{0}, []tileMeta{{side: 4, physLen: 128, sum: 9}})
	rec := make([]byte, jtrecSize+16)
	rec[0] = 'T'
	putWord(rec[4:], 4)                       // side (low word)
	putWord(rec[8:], 128)                     // off
	putWord(rec[16:], uint64(tileCompressed)) // flags (low word)
	putWord(rec[20:], 16)                     // physLen overlaps flags hi; fuzz will mutate anyway
	putWord(rec[32:], Checksum(rec[:32]))
	commit := make([]byte, jcrecSize)
	commit[0] = 'C'
	putWord(commit[8:], 7)
	putWord(commit[16:], Checksum(commit[:16]))
	f.Add(append(append(append([]byte{}, hdr...), rec...), commit...))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := scanJournal(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if sc.end > int64(len(data)) {
			t.Fatalf("committed end %d past input size %d", sc.end, len(data))
		}
		for off, m := range sc.meta {
			if !metaSane(off, m) {
				t.Fatalf("scanner accepted insane meta at %d: %+v", off, m)
			}
			if m.flags&tileJournal != 0 && (m.jpos < jhdrSize || m.jpos+int64(m.physLen) > int64(len(data))) {
				t.Fatalf("journal-resident meta at %d points outside the image: %+v", off, m)
			}
		}
	})
}

// FuzzZRLEDecode: the decoder must reject or exactly consume arbitrary
// payloads without panicking, and every encoder output must round-trip.
func FuzzZRLEDecode(f *testing.F) {
	f.Add([]byte{0x00, 0x04}, uint16(4))
	f.Add([]byte{0x01, 0x01, 1, 2, 3, 4, 5, 6, 7, 8}, uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, words16 uint16) {
		words := int(words16 % 1024)
		dst := make([]byte, words*8)
		_ = zrleDecode(dst, data) // must not panic
		// Encoder outputs round-trip: reinterpret data as raw words.
		src := data
		if len(src) > words*8 {
			src = src[:words*8]
		}
		raw := make([]byte, words*8)
		copy(raw, src)
		if enc := zrleEncode(raw); enc != nil {
			back := make([]byte, len(raw))
			if err := zrleDecode(back, enc); err != nil {
				t.Fatalf("encoder output rejected: %v", err)
			}
			if !bytes.Equal(back, raw) {
				t.Fatal("encode/decode round trip mismatch")
			}
		}
	})
}
