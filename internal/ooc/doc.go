// Package ooc provides the out-of-core substrate for the paper's
// external-memory experiments (§4.1): a file-backed store of float64
// values with an in-RAM cache of configurable size M, transfer
// counters, and a disk-time model calibrated to the paper's Fujitsu
// MAP3735NC drive (10K RPM, 4.5 ms average seek, ~85 MB/s transfer)
// that converts transfer counts into the "I/O wait time" the paper
// plots in Figure 7 — the role STXXL plays in the paper.
//
// The store has two caching regimes over a striped set of backing
// files:
//
//   - The element regime: an LRU page cache of page (block) size B
//     with dirty write-back, serving ReadFloat/WriteFloat one value at
//     a time. Matrix/Rect/TiledRect adapt it to matrix.Grid[float64]
//     and matrix.Rect[float64], so every unmodified internal/core
//     engine runs out-of-core as-is.
//   - The tile regime: whole aligned quadrants of a Morton-tiled
//     matrix pinned into resident []float64 buffers
//     (PinTile/UnpinTile), with best-effort background prefetch
//     (PrefetchTile) and background write-back of evicted dirty tiles.
//     RunIGEP drives I-GEP at this granularity, running the fused
//     internal/core kernels directly on resident tiles; it is
//     bit-identical to the element path and to the in-core engines,
//     and one to two orders of magnitude faster than the element path.
//
// The two regimes are kept coherent conservatively: pinning a tile
// flushes and drops the pages overlapping it, and an element access
// while any tile state exists first syncs the tile cache (SyncTiles).
// Background tasks run on the internal/par runtime (Config.Runtime),
// bounded by Config.WriteBehind per stripe; the driver-facing API
// (element access, pin, sync) must be used from one goroutine at a
// time.
//
// The storage layer underneath is production-grade (see DESIGN.md
// §16): the logical byte space stripes RAID-0 style across
// Config.Stripes backing files in Config.StripeUnit chunks, every
// tile payload carries an XXH64 checksum verified on each fault-in
// (mismatches surface as ErrCorrupt with the tile's identity), and
// Config.Compress adds word-level zero-run compression with
// Stats.BytesLogical vs BytesPhysical keeping the §4.1 accounting
// honest. Stores created with CreateAt (or reopened with Open) are
// additionally durable: tile write-backs route through a write-ahead
// journal, Checkpoint commits a sync point with fsync barriers, and
// after a crash Recover discards any torn journal tail, replays
// committed-but-unapplied tiles, and reports the resumable frontier —
// RunOptions.CheckpointEvery/StartBlock turn that into killed runs
// that resume bit-identically (scripts/recovery-matrix.sh proves it
// by SIGKILLing real runs at every sync point).
//
// I/O failures never panic. APIs that can return errors do
// (PinTile, SyncTiles, Flush, Close, RunIGEP, Load, Unload); the
// element API, whose matrix.Grid signatures cannot, records the first
// failure in the store's sticky error (Err), like bufio.Scanner. Every
// raw transfer retries transient failures with exponential backoff
// (Config.MaxRetries, Config.RetryBackoff), and Config.FaultEvery
// injects deterministic failures for testing the error paths.
//
// Key types and entry points:
//
//   - Config / DefaultDisk / Store: the (M, B) cache geometry, disk
//     model and failure policy, plus the store itself; Stats and
//     IOTime report the transfer counters and modeled disk time that
//     feed the Figure 7 rows in BENCH_ooc.json.
//   - Matrix / NewMatrix with RowMajorLayout or MortonTiledLayout:
//     the Grid view over the store; Load/Unload move whole matrices
//     across the RAM boundary; Tiling/PinTile/PrefetchTile expose the
//     tile regime when the layout is tile-contiguous.
//   - RunIGEP / RunOptions: the tile-granular I-GEP driver.
//   - Rect / TiledRect: rectangular views used by C-GEP's auxiliary
//     buffers.
package ooc
