// Package ooc provides the out-of-core substrate for the paper's
// external-memory experiments (§4.1): a file-backed store of float64
// values with an in-RAM page cache of configurable size M and page
// (block) size B, LRU replacement and dirty write-back — the role
// STXXL plays in the paper. Counters record every page transfer, and a
// disk-time model calibrated to the paper's Fujitsu MAP3735NC drive
// (10K RPM, 4.5 ms average seek, ~85 MB/s transfer) converts transfer
// counts into the "I/O wait time" the paper plots in Figure 7.
//
// The store is single-goroutine (the out-of-core algorithms are run
// sequentially, as in the paper).
//
// Key types and entry points:
//
//   - Config / DefaultDisk / Store: the (M, B) cache geometry plus
//     disk model, and the file-backed page cache itself; Stats and
//     IOTime report the page-transfer counters and modeled disk time
//     that feed the Figure 7 rows in BENCH_ooc.json.
//   - Matrix / NewMatrix with RowMajorLayout or MortonTiledLayout:
//     a matrix.Grid[float64] view over the store, so the unmodified
//     internal/core engines run out-of-core; Load/Unload move whole
//     matrices across the RAM boundary.
//   - Rect / TiledRect: rectangular views used by C-GEP's auxiliary
//     buffers and the tiled I-GEP variant.
package ooc
