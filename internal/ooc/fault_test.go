package ooc

import (
	"errors"
	"os"
	"testing"
	"time"

	"gep/internal/core"
)

// fastRetry keeps injected-fault tests quick.
const fastRetry = 10 * time.Microsecond

// TestInjectedFaultExhaustsRetriesAsError: with every transfer failing
// the tile run must return an error wrapping ErrInjected — never panic
// and never hang — and the run must not have written anything lying
// about success.
func TestInjectedFaultExhaustsRetriesAsError(t *testing.T) {
	s, err := Create(t.TempDir(), Config{
		PageSize: 64, CacheSize: 1024,
		FaultEvery: 1, MaxRetries: 2, RetryBackoff: fastRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(s, 8, 0, MortonTiledLayout(4))
	runErr := RunIGEP(m, core.MinPlus[float64]{}, core.Full{}, RunOptions{Prefetch: true})
	if runErr == nil {
		t.Fatal("RunIGEP succeeded with every transfer failing")
	}
	if !errors.Is(runErr, ErrInjected) {
		t.Fatalf("error does not wrap ErrInjected: %v", runErr)
	}
	if st := s.Stats(); st.Retries == 0 || st.Injected == 0 {
		t.Fatalf("no retries/injections recorded: %+v", st)
	}
	// Close still cleans up without panicking (nothing dirty survived
	// the failed run, so it may well succeed).
	_ = s.Close()
}

// TestInjectedFaultOnElementPathIsSticky: the Grid API cannot return
// errors, so an exhausted element access must record the failure in
// Err instead of panicking.
func TestInjectedFaultOnElementPathIsSticky(t *testing.T) {
	s, err := Create(t.TempDir(), Config{
		PageSize: 64, CacheSize: 1024,
		FaultEvery: 1, MaxRetries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := NewMatrix(s, 4, 0, RowMajorLayout)
	if got := m.At(1, 1); got != 0 {
		t.Fatalf("failed read returned %g, want 0", got)
	}
	if !errors.Is(s.Err(), ErrInjected) {
		t.Fatalf("Err() = %v, want ErrInjected", s.Err())
	}
}

// TestTransientFaultsRecoverByRetry: sporadic failures (every 7th
// transfer) are absorbed by the retry policy — the run succeeds, the
// answer is bit-identical, and the retries are counted.
func TestTransientFaultsRecoverByRetry(t *testing.T) {
	const n, side = 16, 4
	in := randomInput(n, 5)
	want := in.Clone()
	core.RunIGEP[float64](want, core.MinPlus[float64]{}, core.Full{}, core.WithBaseSize[float64](side))

	s, err := Create(t.TempDir(), Config{
		PageSize: 64, CacheSize: 4 * side * side * 8,
		FaultEvery: 7, MaxRetries: 3, RetryBackoff: fastRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(s, n, 0, MortonTiledLayout(side))
	if err := m.Load(in); err != nil {
		t.Fatal(err)
	}
	if err := RunIGEP(m, core.MinPlus[float64]{}, core.Full{}, RunOptions{Prefetch: true}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Retries == 0 {
		t.Fatalf("no retries recorded under FaultEvery=7: %+v", st)
	}
	got, err := m.Unload()
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "transient-recovery", want, got)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionSurvivesWriteBackFailure is the regression test for the
// evict-before-write-back bug: when the write-back of a dirty LRU
// victim fails, the victim must stay resident and dirty — no silent
// data loss — and once the disk recovers, the data must reach it.
func TestEvictionSurvivesWriteBackFailure(t *testing.T) {
	s, err := Create(t.TempDir(), Config{PageSize: 64, CacheSize: 64, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.WriteFloat(0, 42) // page 0 resident and dirty
	name := s.files[0].Name()

	// Break the disk under the store, then fault a second page, which
	// needs to evict dirty page 0.
	if err := s.files[0].Close(); err != nil {
		t.Fatal(err)
	}
	_ = s.ReadFloat(64)
	if s.Err() == nil {
		t.Fatal("failed write-back recorded no error")
	}
	if s.Resident() != 1 {
		t.Fatalf("resident = %d after failed eviction, want the victim kept", s.Resident())
	}
	// The dirty data is still served from the cache, not lost.
	if got := s.ReadFloat(0); got != 42 {
		t.Fatalf("victim data lost: ReadFloat(0) = %g, want 42", got)
	}

	// Repair the disk: the retained dirty page flushes successfully.
	f2, err := os.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.files[0] = f2
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after repair: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseReturnsFlushError is the regression test for Close ignoring
// Flush failures: a dirty store whose disk is gone must report the
// failure from Close, not return nil.
func TestCloseReturnsFlushError(t *testing.T) {
	s, err := Create(t.TempDir(), Config{PageSize: 64, CacheSize: 256, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.WriteFloat(0, 1) // dirty page
	if err := s.files[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close returned nil with a dirty page and a broken disk")
	}
}

// TestWriteBehindFailureSurfacesAtSync: a background write-back error
// must reach the driver at the next sync point even when the driver
// never re-pins the failed tile.
func TestWriteBehindFailureSurfacesAtSync(t *testing.T) {
	const side = 4
	tileBytes := int64(side * side * 8)
	s, err := Create(t.TempDir(), Config{
		PageSize: 64, CacheSize: tileBytes, // 1-tile budget: every pin evicts
		MaxRetries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(s, 8, 0, MortonTiledLayout(side))

	tile, err := m.PinTile(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tile.Data[0] = 1
	s.UnpinTile(tile, true)

	// Break the disk, then evict the dirty tile by pinning another.
	name := s.files[0].Name()
	if err := s.files[0].Close(); err != nil {
		t.Fatal(err)
	}
	t2, err := m.PinTile(1, 1)
	if err == nil {
		// The read of the new tile may fail too (broken disk); if it
		// somehow succeeded, unpin and rely on the sync below.
		s.UnpinTile(t2, false)
	}
	if serr := s.SyncTiles(); serr == nil && s.Err() == nil {
		t.Fatal("background write-back failure vanished")
	}
	// Reopen so Close can clean up the temp file.
	if f2, oerr := os.OpenFile(name, os.O_RDWR, 0); oerr == nil {
		s.files[0] = f2
		s.Close()
	}
}

// TestLayoutValidationError: misuse that is not I/O keeps its panic
// (NewMatrix alignment), but pinning mismatched tile geometry is an
// error, not a panic.
func TestTileSideMismatchIsError(t *testing.T) {
	s := newTestStore(t, 64, 4096)
	tile, err := s.PinTile(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.UnpinTile(tile, false)
	if _, err := s.PinTile(0, 8); err == nil {
		t.Fatal("mismatched tile side accepted")
	}
}
