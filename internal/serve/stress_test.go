package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressSubmitDuringShutdown hammers the server with concurrent
// submitters, fires Shutdown mid-flight, and checks the invariants
// that matter under load: every submission either gets a well-formed
// rejection or is admitted, every admitted job reaches a terminal
// state, and the accepted/rejected accounting matches what the server
// retained. Run with -race in CI.
func TestStressSubmitDuringShutdown(t *testing.T) {
	s := New(Config{QueueDepth: 16, MaxConcurrent: 4, DefaultWorkers: 2, RetainJobs: 4096})

	const submitters = 8
	var (
		accepted atomic.Int64
		rejected atomic.Int64
		stop     atomic.Bool
		idsMu    sync.Mutex
		ids      []string
	)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				v, err := s.Submit(Spec{Op: "lu", N: 128, Seed: int64(g*1000 + i)})
				if err != nil {
					var ae *apiErr
					if !errors.As(err, &ae) {
						t.Errorf("submitter %d: non-API error %v", g, err)
						return
					}
					switch ae.status {
					case http.StatusTooManyRequests:
						rejected.Add(1)
						time.Sleep(time.Millisecond)
					case http.StatusServiceUnavailable:
						rejected.Add(1)
						return // draining: this submitter is done
					default:
						t.Errorf("submitter %d: unexpected rejection %d %s", g, ae.status, ae.msg)
						return
					}
					continue
				}
				accepted.Add(1)
				idsMu.Lock()
				ids = append(ids, v.ID)
				idsMu.Unlock()
			}
		}()
	}

	// Let the queue churn, then drain while submitters are still going.
	time.Sleep(150 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	if accepted.Load() == 0 || rejected.Load() == 0 {
		t.Fatalf("stress did not exercise both paths: accepted=%d rejected=%d",
			accepted.Load(), rejected.Load())
	}
	list := s.List()
	if int64(len(list)) != accepted.Load() {
		t.Fatalf("server retained %d jobs, %d were accepted", len(list), accepted.Load())
	}
	for _, v := range list {
		if !v.Status.Terminal() {
			t.Fatalf("job %s left %s after drain", v.ID, v.Status)
		}
		if v.Status == StatusFailed {
			t.Fatalf("job %s failed under load: %s", v.ID, v.Error)
		}
	}
	// Drained, not aborted: every admitted job actually completed.
	for _, id := range ids {
		if v, ok := s.Get(id); !ok || v.Status != StatusDone {
			t.Fatalf("admitted job %s did not complete (status %v)", id, v.Status)
		}
	}
}
