package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gep/internal/par"
)

// Config sizes the server's admission control and per-job defaults.
// The zero value is usable: Normalize fills in the defaults below.
type Config struct {
	// QueueDepth bounds the number of admitted-but-not-running jobs;
	// submissions beyond it are rejected with 429 (default 64).
	QueueDepth int
	// MaxConcurrent is the number of executor goroutines, i.e. how
	// many jobs run at once (default 2).
	MaxConcurrent int
	// DefaultWorkers is the per-job runtime worker budget when the
	// spec leaves Workers at 0 (default 2).
	DefaultWorkers int
	// MaxWorkers caps the per-job worker budget a spec may request
	// (default 2×DefaultWorkers).
	MaxWorkers int
	// DefaultDeadline applies when the spec leaves DeadlineMS at 0
	// (default 60s); MaxDeadline caps what a spec may request
	// (default 10×DefaultDeadline).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxN caps the accepted problem side; larger jobs get 413
	// (default 4096).
	MaxN int
	// RetainJobs bounds how many finished jobs stay queryable before
	// the oldest are evicted (default 256).
	RetainJobs int
}

// Normalize fills zero fields with the documented defaults and
// returns the result.
func (c Config) Normalize() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 2
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 2 * c.DefaultWorkers
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * c.DefaultDeadline
	}
	if c.MaxN <= 0 {
		c.MaxN = 4096
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 256
	}
	return c
}

// apiErr is a client-facing rejection: an HTTP status plus the
// machine-readable code and message rendered into the error body.
type apiErr struct {
	status int
	code   string
	msg    string
}

func (e *apiErr) Error() string { return e.msg }

// Server owns the job queue and executors. Create with New, expose
// over HTTP via Handler, stop with Shutdown.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job ids in admission order, for listing and eviction
	seq      int
	draining bool

	queue chan *Job
	wg    sync.WaitGroup // executor goroutines
}

// New builds a Server from cfg (zero fields defaulted) and starts its
// executor goroutines.
func New(cfg Config) *Server {
	s := &Server{
		cfg:   cfg.Normalize(),
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.Normalize().QueueDepth),
	}
	for i := 0; i < s.cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// Config returns the server's normalized configuration.
func (s *Server) Config() Config { return s.cfg }

// Submit validates and admits a job, returning its queued view. The
// returned error, when non-nil, is an *apiErr carrying the HTTP
// status the handler should send.
func (s *Server) Submit(spec Spec) (JobView, error) {
	if err := spec.validate(s.cfg.MaxN); err != nil {
		return JobView{}, &apiErr{http.StatusBadRequest, "invalid_request", err.Error()}
	}
	if spec.tooLarge(s.cfg.MaxN) {
		return JobView{}, &apiErr{http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("n = %d exceeds the server cap %d", spec.N, s.cfg.MaxN)}
	}
	if spec.Workers < 0 || spec.Workers > s.cfg.MaxWorkers {
		return JobView{}, &apiErr{http.StatusBadRequest, "invalid_request",
			fmt.Sprintf("workers = %d out of range [0, %d]", spec.Workers, s.cfg.MaxWorkers)}
	}
	if spec.DeadlineMS < 0 || time.Duration(spec.DeadlineMS)*time.Millisecond > s.cfg.MaxDeadline {
		return JobView{}, &apiErr{http.StatusBadRequest, "invalid_request",
			fmt.Sprintf("deadline_ms = %d out of range [0, %d]", spec.DeadlineMS, s.cfg.MaxDeadline.Milliseconds())}
	}

	j := &Job{
		spec:     spec,
		workers:  spec.Workers,
		deadline: time.Duration(spec.DeadlineMS) * time.Millisecond,
		status:   StatusQueued,
		queuedAt: time.Now(),
	}
	if j.workers == 0 {
		j.workers = s.cfg.DefaultWorkers
	}
	if j.deadline == 0 {
		j.deadline = s.cfg.DefaultDeadline
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobView{}, &apiErr{http.StatusServiceUnavailable, "draining",
			"server is shutting down and not accepting jobs"}
	}
	s.seq++
	j.id = fmt.Sprintf("j%d", s.seq)
	select {
	case s.queue <- j:
	default:
		return JobView{}, &apiErr{http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("job queue is full (%d queued)", s.cfg.QueueDepth)}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	return j.view(), nil
}

// evictLocked drops the oldest terminal jobs beyond the retention
// bound; the caller holds s.mu.
func (s *Server) evictLocked() {
	excess := len(s.order) - s.cfg.RetainJobs
	for i := 0; excess > 0 && i < len(s.order); {
		j := s.jobs[s.order[i]]
		if !j.status.Terminal() {
			i++
			continue
		}
		delete(s.jobs, j.id)
		s.order = append(s.order[:i], s.order[i+1:]...)
		excess--
	}
}

// runJob executes one job on an executor goroutine: fresh runtime,
// deadline watcher, outcome classification, metrics snapshot.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	if j.canceled || j.status.Terminal() {
		s.finishLocked(j, StatusCanceled, "canceled before start")
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), j.deadline)
	rt := par.NewRuntime(j.workers)
	j.status = StatusRunning
	j.startedAt = time.Now()
	j.cancel = cancel
	j.rt = rt
	s.mu.Unlock()

	// The watcher maps deadline expiry or an explicit cancel onto a
	// best-effort runtime abort, which unwinds the recursion without
	// waiting for it to finish naturally. watchDone is closed before
	// the cleanup cancel(), but a select between two ready channels
	// picks randomly — so on ctx.Done the watcher re-checks watchDone
	// before aborting, else a completed job could be aborted by its
	// own cleanup and misreported as canceled. runJob waits for the
	// watcher to exit before classifying, so no abort can land after
	// the rt.Aborted() read.
	watchDone := make(chan struct{})
	watcherExited := make(chan struct{})
	go func() {
		defer close(watcherExited)
		select {
		case <-ctx.Done():
			select {
			case <-watchDone:
				// Execution already finished; nothing to abort.
			default:
				rt.Abort()
			}
		case <-watchDone:
		}
	}()

	start := time.Now()
	res, err := j.spec.execute(rt)
	wall := time.Since(start)
	close(watchDone)
	cancel()
	<-watcherExited

	s.mu.Lock()
	defer s.mu.Unlock()
	j.wall = wall
	j.metrics = rt.Metrics().Snapshot()
	rt.Close()
	j.rt = nil
	j.cancel = nil
	switch {
	case rt.Aborted() && ctx.Err() == context.DeadlineExceeded:
		s.finishLocked(j, StatusFailed, fmt.Sprintf("deadline exceeded after %v", j.deadline))
	case rt.Aborted():
		s.finishLocked(j, StatusCanceled, "canceled")
	case err != nil:
		s.finishLocked(j, StatusFailed, err.Error())
	default:
		res.ID, res.Op, res.N = j.id, j.spec.Op, j.spec.N
		res.WallMS = float64(wall) / float64(time.Millisecond)
		j.result = res
		s.finishLocked(j, StatusDone, "")
	}
}

// finishLocked moves a job to a terminal state; the caller holds s.mu.
func (s *Server) finishLocked(j *Job, st Status, msg string) {
	if j.status.Terminal() {
		return
	}
	j.status = st
	j.err = msg
	j.finishedAt = time.Now()
}

// Get returns the status view of one job.
func (s *Server) Get(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// List returns every retained job in admission order.
func (s *Server) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// ResultOf returns a finished job's result. The error is an *apiErr
// when the job is unknown or not yet finished.
func (s *Server) ResultOf(id string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, &apiErr{http.StatusNotFound, "not_found", fmt.Sprintf("no job %q", id)}
	}
	if !j.status.Terminal() {
		return nil, &apiErr{http.StatusConflict, "not_finished",
			fmt.Sprintf("job %s is %s; poll status or stream events until it finishes", id, j.status)}
	}
	if j.result == nil {
		return nil, &apiErr{http.StatusConflict, j.err, fmt.Sprintf("job %s %s: %s", id, j.status, j.err)}
	}
	return j.result, nil
}

// Cancel stops a job: a queued job is finalized immediately, a
// running one has its runtime aborted. Canceling a terminal job is a
// no-op; an unknown id is an error.
func (s *Server) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, &apiErr{http.StatusNotFound, "not_found", fmt.Sprintf("no job %q", id)}
	}
	switch {
	case j.status == StatusQueued:
		j.canceled = true
		s.finishLocked(j, StatusCanceled, "canceled while queued")
	case j.status == StatusRunning:
		j.canceled = true
		j.cancel() // the watcher aborts the runtime
	}
	return j.view(), nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops admission and drains: queued and running jobs keep
// going until done. If ctx expires first, everything still in flight
// is canceled (running runtimes aborted) and Shutdown waits for the
// executors to wind down before returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.queue) // Submit checks draining under the same mutex before sending
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	s.mu.Lock()
	for _, id := range s.order {
		j := s.jobs[id]
		switch j.status {
		case StatusQueued:
			j.canceled = true
			s.finishLocked(j, StatusCanceled, "canceled by shutdown")
		case StatusRunning:
			j.canceled = true
			j.cancel()
		}
	}
	s.mu.Unlock()
	<-done // aborts make the remaining executor work bounded
	return ctx.Err()
}
