package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// smallStorage forces real out-of-core behavior at test sizes: a
// 16 KiB tile cache is far below the n=64 footprint (32 KiB per
// matrix), so tiles fault, evict, compress, and journal for real.
func smallStorage() *StorageSpec {
	return &StorageSpec{
		OutOfCore:       true,
		Stripes:         3,
		TileSide:        16,
		CacheBytes:      16 << 10,
		Compress:        true,
		CheckpointEvery: 8,
	}
}

// fetchResult downloads a finished job's result payload.
func fetchResult(t *testing.T, ts *httptest.Server, id string) Result {
	t.Helper()
	rr, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	decodeBody(t, rr, &res)
	return res
}

// TestStorageJobsBitIdentical is the serve-layer durability
// acceptance: for every ooc-capable op, a job run on a durable striped
// store (checksummed tiles, journal sync points, compression, a cache
// far below the working set) returns bit-identical output to the same
// spec run in-core.
func TestStorageJobsBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, DefaultWorkers: 2, MaxWorkers: 4})

	const n = 64
	specs := []Spec{
		{Op: "lu", N: n, Seed: 3},
		{Op: "gauss", N: n, Seed: 5},
		{Op: "apsp", N: n, Seed: 7},
		{Op: "multiply", N: n, Seed: 9},
		{Op: "multiply", N: n, Seed: 9, Engine: "strassen"},
	}
	for _, spec := range specs {
		name := spec.Op
		if spec.Engine != "" {
			name += "/" + spec.Engine
		}
		run := func(st *StorageSpec) Result {
			s := spec
			s.Storage = st
			resp, v := postJob(t, ts, s)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("%s: submit (storage=%v): status %d", name, st != nil, resp.StatusCode)
			}
			if fin := waitTerminal(t, ts, v.ID); fin.Status != StatusDone {
				t.Fatalf("%s: finished %s (%s), want done", name, fin.Status, fin.Error)
			}
			return fetchResult(t, ts, v.ID)
		}
		incore, durable := run(nil), run(smallStorage())
		if len(durable.Data) != n*n || len(incore.Data) != n*n {
			t.Fatalf("%s: cells in-core=%d durable=%d, want %d", name, len(incore.Data), len(durable.Data), n*n)
		}
		for i := range incore.Data {
			a, b := incore.Data[i], durable.Data[i]
			if (a == nil) != (b == nil) || (a != nil && *a != *b) {
				t.Fatalf("%s: cell %d: in-core %v != durable %v", name, i, a, b)
			}
		}
	}
}

// TestStorageValidation exercises the storage admission rules.
func TestStorageValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		spec Spec
	}{
		{"storage on closure", Spec{Op: "closure", N: 16, Storage: &StorageSpec{OutOfCore: true}}},
		{"storage on matrixchain", Spec{Op: "matrixchain", Dims: []int{2, 3, 4}, Storage: &StorageSpec{OutOfCore: true}}},
		{"out_of_core false", Spec{Op: "lu", N: 64, Storage: &StorageSpec{}}},
		{"too many stripes", Spec{Op: "lu", N: 64, Storage: &StorageSpec{OutOfCore: true, Stripes: 65}}},
		{"negative stripes", Spec{Op: "lu", N: 64, Storage: &StorageSpec{OutOfCore: true, Stripes: -1}}},
		{"non-pow2 tile", Spec{Op: "lu", N: 64, Storage: &StorageSpec{OutOfCore: true, TileSide: 12}}},
		{"tiny tile", Spec{Op: "lu", N: 64, Storage: &StorageSpec{OutOfCore: true, TileSide: 4}}},
		{"negative cache", Spec{Op: "lu", N: 64, Storage: &StorageSpec{OutOfCore: true, CacheBytes: -1}}},
		{"negative checkpoint", Spec{Op: "lu", N: 64, Storage: &StorageSpec{OutOfCore: true, CheckpointEvery: -1}}},
	}
	for _, tc := range cases {
		resp, _ := postJob(t, ts, tc.spec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestStorageCapability checks the durability feature-detection
// surface of GET /v1/ops.
func TestStorageCapability(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/ops")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Ops map[string]struct {
			OOC bool `json:"ooc"`
		} `json:"ops"`
		Capabilities []string `json:"capabilities"`
	}
	decodeBody(t, resp, &body)
	durable := false
	for _, c := range body.Capabilities {
		if c == "durability" {
			durable = true
		}
	}
	if !durable {
		t.Fatalf("capabilities %v lack durability", body.Capabilities)
	}
	for _, op := range []string{"multiply", "lu", "gauss", "apsp"} {
		if !body.Ops[op].OOC {
			t.Errorf("op %s should advertise ooc", op)
		}
	}
	for _, op := range []string{"closure", "matrixchain"} {
		if body.Ops[op].OOC {
			t.Errorf("op %s should not advertise ooc", op)
		}
	}
}

// TestStorageDeadlineAborts checks that aborting a job's runtime
// actually stops an out-of-core run: the driver's Stop poll fires at
// the next base-case block and the store unwinds without wedging the
// executor (the write-behind slot accounting survives dropped spawns).
func TestStorageDeadlineAborts(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultWorkers: 1})
	resp, v := postJob(t, ts, Spec{Op: "lu", N: 512, DeadlineMS: 30, Storage: &StorageSpec{
		OutOfCore:  true,
		Stripes:    2,
		TileSide:   16,
		CacheBytes: 64 << 10,
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	fin := waitTerminal(t, ts, v.ID)
	if fin.Status != StatusFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("finished %s (%q), want failed with deadline error", fin.Status, fin.Error)
	}
}

// TestStressStorageJobs hammers the server with concurrent durable
// jobs on tiny caches — many stores faulting, compressing, and
// journaling in parallel on private runtimes — and checks every job
// completes with the right output shape. Named TestStress* so the CI
// server-stress step picks it up under -race.
func TestStressStorageJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4, DefaultWorkers: 2, MaxWorkers: 2, QueueDepth: 32})

	const n = 32
	ops := []string{"lu", "gauss", "apsp", "multiply"}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 12; i++ {
		spec := Spec{Op: ops[i%len(ops)], N: n, Seed: int64(i), Storage: &StorageSpec{
			OutOfCore:       true,
			Stripes:         1 + i%3,
			TileSide:        8,
			CacheBytes:      4 << 10, // four 8×8 tiles
			Compress:        i%2 == 0,
			CheckpointEvery: 4,
		}}
		wg.Add(1)
		go func(spec Spec) {
			defer wg.Done()
			resp, v := postJob(t, ts, spec)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- errStatus(spec.Op, resp.StatusCode)
				return
			}
			deadline := time.Now().Add(60 * time.Second)
			for time.Now().Before(deadline) {
				got, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
				if err != nil {
					errs <- err
					return
				}
				var jv JobView
				decodeBody(t, got, &jv)
				if jv.Status.Terminal() {
					if jv.Status != StatusDone {
						errs <- errStatus(spec.Op+": "+jv.Error, 0)
					}
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			errs <- errStatus(spec.Op+": timeout", 0)
		}(spec)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// errStatus builds a compact error for the stress collector.
func errStatus(what string, code int) error {
	if code != 0 {
		return &apiErr{code, "stress", what}
	}
	return &apiErr{500, "stress", what}
}
