package serve

import (
	"os"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/ooc"
	"gep/internal/par"
)

// StorageSpec is the optional "storage" object of a job Spec. When
// present (with out_of_core: true), the job runs against a durable
// striped ooc store in a per-job temporary directory instead of
// in-RAM dense matrices: tiles are checksummed, write-behind is
// striped across backing files, and the run commits journal sync
// points every checkpoint_every base-case blocks. Results are
// bit-identical to the in-core engines. Only the ops that advertise
// "ooc": true on GET /v1/ops accept it.
type StorageSpec struct {
	// OutOfCore must be true; requiring it keeps an accidental empty
	// "storage": {} from silently changing the execution engine.
	OutOfCore bool `json:"out_of_core"`
	// Stripes is the backing-file count (0 = store default, max 64).
	Stripes int `json:"stripes,omitempty"`
	// TileSide is the tile (and I-GEP base-case) side; 0 defaults to
	// 32. Must be a power of two >= 8; clamped down to n.
	TileSide int `json:"tile_side,omitempty"`
	// CacheBytes is the in-RAM tile cache budget (0 = 16 MiB). Jobs
	// larger than the budget fault tiles in and out — that is the
	// point.
	CacheBytes int64 `json:"cache_bytes,omitempty"`
	// Compress enables per-tile zero-run compression of spilled tiles.
	Compress bool `json:"compress,omitempty"`
	// CheckpointEvery is the durable sync-point interval in base-case
	// blocks (0 = 64). Ignored by "multiply", which syncs once at
	// completion.
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
}

// storageDefaults for the unset StorageSpec knobs.
const (
	storageDefaultTile  = 32
	storageDefaultCache = int64(16 << 20)
	storageDefaultCkpt  = int64(64)
	storageMaxStripes   = 64
)

// config builds the store configuration for one job, confining the
// store's background work (write-behind, parallel checkpoint apply)
// to the job's private runtime.
func (st *StorageSpec) config(rt *par.Runtime) ooc.Config {
	cache := st.CacheBytes
	if cache == 0 {
		cache = storageDefaultCache
	}
	return ooc.Config{
		PageSize:  1 << 12,
		CacheSize: cache,
		Stripes:   st.Stripes,
		Compress:  st.Compress,
		Runtime:   rt,
	}
}

// tile resolves the tile side for an n×n job.
func (st *StorageSpec) tile(n int) int {
	t := st.TileSide
	if t == 0 {
		t = storageDefaultTile
	}
	if t > n {
		t = n
	}
	return t
}

// every resolves the sync-point interval.
func (st *StorageSpec) every() int64 {
	if st.CheckpointEvery == 0 {
		return storageDefaultCkpt
	}
	return st.CheckpointEvery
}

// runDurableGEP executes the in-place GEP op over in on a durable
// store and returns the factored matrix. The store lives in a
// temporary directory that is removed when the job finishes either
// way — durability here buys checksummed, journaled execution (and
// abort responsiveness via the Stop poll), not cross-job persistence.
func runDurableGEP(st *StorageSpec, rt *par.Runtime, in *matrix.Dense[float64],
	op core.Op[float64], set core.UpdateSet) (*matrix.Dense[float64], error) {
	dir, err := os.MkdirTemp("", "gep-serve-ooc-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	s, err := ooc.CreateAt(dir, st.config(rt))
	if err != nil {
		return nil, err
	}
	m := ooc.NewMatrix(s, in.N(), 0, ooc.MortonTiledLayout(st.tile(in.N())))
	if err := m.LoadTiles(in); err != nil {
		s.Abandon()
		return nil, err
	}
	if err := s.Checkpoint(0); err != nil {
		s.Abandon()
		return nil, err
	}
	err = ooc.RunIGEP(m, op, set, ooc.RunOptions{
		Prefetch:        true,
		CheckpointEvery: st.every(),
		Stop:            rt.Aborted,
	})
	if err != nil {
		s.Abandon()
		return nil, err
	}
	out, uerr := m.Unload()
	if uerr != nil {
		s.Abandon()
		return nil, uerr
	}
	return out, s.Close()
}

// runDurableMultiply executes c = a·b on a durable store holding all
// three matrices (a, b, c at consecutive bases; Strassen scratch goes
// past them). crossover >= n selects the purely classical tile loop,
// which is bit-identical to the in-core fused engine; smaller
// crossovers run Strassen-Winograd, bit-identical to the in-core
// Strassen at the same crossover.
func runDurableMultiply(st *StorageSpec, rt *par.Runtime, a, b *matrix.Dense[float64],
	crossover int) (*matrix.Dense[float64], error) {
	n := a.N()
	dir, err := os.MkdirTemp("", "gep-serve-ooc-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	s, err := ooc.CreateAt(dir, st.config(rt))
	if err != nil {
		return nil, err
	}
	layout := ooc.MortonTiledLayout(st.tile(n))
	bytes := int64(n) * int64(n) * 8
	la := ooc.NewMatrix(s, n, 0, layout)
	lb := ooc.NewMatrix(s, n, bytes, layout)
	lc := ooc.NewMatrix(s, n, 2*bytes, layout)
	if err := la.LoadTiles(a); err == nil {
		err = lb.LoadTiles(b)
	}
	if err == nil {
		err = s.Checkpoint(0)
	}
	if err == nil {
		err = ooc.RunStrassen(lc, la, lb, crossover, ooc.RunOptions{Prefetch: true})
	}
	if err != nil {
		s.Abandon()
		return nil, err
	}
	out, uerr := lc.Unload()
	if uerr != nil {
		s.Abandon()
		return nil, uerr
	}
	return out, s.Close()
}
