package serve

import (
	"context"
	"time"

	"gep/internal/par"
)

// Status is a job's lifecycle state. Transitions only move forward:
// queued → running → one of the three terminal states.
type Status string

// The job lifecycle states.
const (
	// StatusQueued: admitted, waiting for an executor slot.
	StatusQueued Status = "queued"
	// StatusRunning: executing on its own par.Runtime.
	StatusRunning Status = "running"
	// StatusDone: finished; the result is available.
	StatusDone Status = "done"
	// StatusFailed: finished with an error (including a missed
	// deadline); Error carries the reason.
	StatusFailed Status = "failed"
	// StatusCanceled: canceled by DELETE /v1/jobs/{id} or by shutdown
	// before completing.
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Job is one admitted job. All mutable state is guarded by the
// server's mutex (jobs are few and transitions rare; the hot path —
// the computation itself — never touches it).
type Job struct {
	id       string
	spec     Spec
	workers  int
	deadline time.Duration

	status     Status
	err        string
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time

	// cancel interrupts the running job's context; set while running.
	cancel context.CancelFunc
	// canceled records a cancel request that arrived while queued.
	canceled bool
	// rt is the job's isolated runtime while running; its metrics
	// registry is snapshotted into metrics at finish.
	rt      *par.Runtime
	metrics map[string]int64
	result  *Result
	wall    time.Duration
}

// JobView is the wire representation of a job's status: the body of
// GET /v1/jobs/{id} and the elements of GET /v1/jobs.
type JobView struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// Op and N echo the submitted spec.
	Op string `json:"op"`
	N  int    `json:"n,omitempty"`
	// Status is the lifecycle state; Error is set when Status is
	// "failed" or "canceled".
	Status Status `json:"status"`
	Error  string `json:"error,omitempty"`
	// Workers is the job's isolated worker budget; DeadlineMS the
	// effective deadline.
	Workers    int   `json:"workers"`
	DeadlineMS int64 `json:"deadline_ms"`
	// QueuedAt / StartedAt / FinishedAt are RFC 3339 timestamps;
	// empty until reached.
	QueuedAt   string `json:"queued_at"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
	// WallMS is the execution wall time (set once finished).
	WallMS float64 `json:"wall_ms,omitempty"`
	// Tasks counts fork-join tasks the job's runtime has executed so
	// far — the live progress signal streamed by /events.
	Tasks int64 `json:"tasks,omitempty"`
	// Metrics is the job runtime's full "par.*" counter snapshot,
	// attached once the job finishes.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// view renders the job's current state; the caller holds the server
// mutex.
func (j *Job) view() JobView {
	v := JobView{
		ID:         j.id,
		Op:         j.spec.Op,
		N:          j.spec.N,
		Status:     j.status,
		Error:      j.err,
		Workers:    j.workers,
		DeadlineMS: j.deadline.Milliseconds(),
		QueuedAt:   j.queuedAt.UTC().Format(time.RFC3339Nano),
	}
	if !j.startedAt.IsZero() {
		v.StartedAt = j.startedAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.finishedAt.IsZero() {
		v.FinishedAt = j.finishedAt.UTC().Format(time.RFC3339Nano)
		v.WallMS = float64(j.wall) / float64(time.Millisecond)
	}
	if j.status.Terminal() {
		v.Metrics = j.metrics
		v.Tasks = j.metrics["par.spawn.pooled"] + j.metrics["par.spawn.inline"]
	} else if j.rt != nil {
		s := j.rt.Metrics().Snapshot()
		v.Tasks = s["par.spawn.pooled"] + s["par.spawn.inline"]
	}
	return v
}
