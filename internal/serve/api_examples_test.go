package serve

import (
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"
)

// curlExample is one `curl` line lifted from docs/API.md.
type curlExample struct {
	line   int
	method string
	path   string
	body   string
}

var (
	curlMethod = regexp.MustCompile(`-X\s+([A-Z]+)`)
	curlURL    = regexp.MustCompile(`http://localhost:8080(/\S*)`)
	curlBody   = regexp.MustCompile(`-d\s+'([^']*)'`)
)

// parseCurlExamples extracts every curl invocation from the doc, in
// document order. The doc commits to a strict single-line format —
// `curl -X METHOD http://localhost:8080/path [-d '...']` — so the
// examples stay machine-checkable.
func parseCurlExamples(t *testing.T, doc string) []curlExample {
	t.Helper()
	var out []curlExample
	for i, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "curl ") {
			continue
		}
		m := curlMethod.FindStringSubmatch(line)
		u := curlURL.FindStringSubmatch(line)
		if m == nil || u == nil {
			t.Fatalf("docs/API.md:%d: curl example not in the canonical form: %s", i+1, line)
		}
		ex := curlExample{line: i + 1, method: m[1], path: u[1]}
		if b := curlBody.FindStringSubmatch(line); b != nil {
			ex.body = b[1]
		}
		out = append(out, ex)
	}
	return out
}

// TestAPIDocExamples replays every curl example in docs/API.md
// against a live server, in document order, and requires each one to
// succeed with the status the doc promises (202 for submissions, 200
// for everything else). The examples reference job id "j1", which is
// exactly what a fresh server assigns to the doc's first submission —
// so the doc is executable as written.
func TestAPIDocExamples(t *testing.T) {
	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("read docs/API.md: %v", err)
	}
	examples := parseCurlExamples(t, string(raw))
	if len(examples) < 10 {
		t.Fatalf("parsed only %d curl examples from docs/API.md — the doc lost coverage", len(examples))
	}

	s, ts := newTestServer(t, Config{MaxConcurrent: 2, DefaultWorkers: 2, MaxWorkers: 4})

	var submitted []string
	settled := false
	for _, ex := range examples {
		// The read-only examples assume the submitted jobs have
		// finished (e.g. fetching j1's result); settle once, at the
		// boundary between the submission and inspection sections.
		if ex.method != http.MethodPost && !settled {
			for _, id := range submitted {
				if v := waitTerminal(t, ts, id); v.Status != StatusDone {
					t.Fatalf("docs example job %s finished %s (%s), want done", id, v.Status, v.Error)
				}
			}
			settled = true
		}

		req, err := http.NewRequest(ex.method, ts.URL+ex.path, strings.NewReader(ex.body))
		if err != nil {
			t.Fatalf("docs/API.md:%d: %v", ex.line, err)
		}
		if ex.body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("docs/API.md:%d: %s %s: %v", ex.line, ex.method, ex.path, err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		want := http.StatusOK
		if ex.method == http.MethodPost {
			want = http.StatusAccepted
		}
		if resp.StatusCode != want {
			t.Fatalf("docs/API.md:%d: %s %s returned %d, want %d\nbody: %s",
				ex.line, ex.method, ex.path, resp.StatusCode, want, payload)
		}
		if ex.method == http.MethodPost {
			v, gotErr := s.Get(jobIDFromLocation(t, resp))
			if !gotErr {
				t.Fatalf("docs/API.md:%d: submitted job not found on the server", ex.line)
			}
			submitted = append(submitted, v.ID)
		}
	}
	if !settled {
		t.Fatal("docs/API.md has no read-only examples after the submissions")
	}

	// The doc's first submission must really be j1 — its later
	// examples reference that id literally.
	if len(submitted) == 0 || submitted[0] != "j1" {
		t.Fatalf("first documented submission got id %v, but the doc says j1", submitted)
	}
}

// jobIDFromLocation pulls the job id out of a 202 Location header.
func jobIDFromLocation(t *testing.T, resp *http.Response) string {
	t.Helper()
	loc := resp.Header.Get("Location")
	id := strings.TrimPrefix(loc, "/v1/jobs/")
	if id == "" || id == loc {
		t.Fatalf("submission Location header %q is not a job URL", loc)
	}
	return id
}
