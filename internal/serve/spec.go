package serve

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"strings"

	"gep/internal/apsp"
	"gep/internal/core"
	"gep/internal/dp"
	"gep/internal/linalg"
	"gep/internal/matrix"
	"gep/internal/par"
)

// Spec is a submitted job description: the JSON body of POST /v1/jobs.
// Exactly one problem is described; inputs come either from Data/A/B
// (explicit, row-major) or are generated deterministically from Seed.
// The full schema, with per-op semantics and examples, is documented
// in docs/API.md.
type Spec struct {
	// Op selects the computation: "multiply" (c = a·b), "lu" (in-place
	// LU factors), "gauss" (in-place Gaussian elimination), "apsp"
	// (all-pairs shortest paths), "closure" (boolean transitive
	// closure), or "matrixchain" (optimal parenthesization).
	Op string `json:"op"`
	// N is the problem side length. The dense-matrix ops (multiply,
	// lu, gauss, apsp) require a power of two; closure accepts any
	// side; matrixchain ignores N and uses Dims.
	N int `json:"n,omitempty"`
	// Seed generates deterministic random inputs when no explicit data
	// is supplied (the same seed always produces the same inputs).
	Seed int64 `json:"seed,omitempty"`
	// Data is the explicit row-major n×n input for the single-matrix
	// ops. For "apsp" a zero off-diagonal cell means "no edge"; for
	// "closure" nonzero means an edge.
	Data []float64 `json:"data,omitempty"`
	// A and B are the explicit row-major operands of "multiply".
	A []float64 `json:"a,omitempty"`
	B []float64 `json:"b,omitempty"`
	// Engine selects the multiply algorithm: "" or "classical" for the
	// fused Θ(n³) recursion, "strassen" for the sub-cubic
	// Strassen-Winograd hybrid. Only "multiply" takes an engine;
	// unknown names and engines on other ops are rejected with a 400.
	Engine string `json:"engine,omitempty"`
	// Pivot selects the "lu" row-pivoting strategy: "" or "none" for
	// the paper's pivot-free I-GEP path (input must be factorable
	// without pivoting, e.g. diagonally dominant), "tournament" for
	// communication-avoiding CALU (linalg.FactorCA), which accepts any
	// nonsingular matrix and additionally returns the row permutation.
	// Only "lu" takes a pivot; singular inputs fail the job. The
	// strategies an op accepts are advertised as "pivots" on
	// GET /v1/ops.
	Pivot string `json:"pivot,omitempty"`
	// Dims is the matrix-chain dimension vector for "matrixchain"
	// (len(Dims) = #matrices + 1).
	Dims []int `json:"dims,omitempty"`
	// Workers is the job's par.Runtime worker budget; 0 takes the
	// server default, and values above the server's cap are rejected.
	Workers int `json:"workers,omitempty"`
	// DeadlineMS is the job deadline in milliseconds from the moment
	// it starts running; 0 takes the server default, values above the
	// server cap are rejected.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Storage, when present, runs the job out-of-core on a durable
	// striped store (checksummed tiles, write-ahead journal) instead
	// of in-RAM matrices; see StorageSpec. Only ops advertising
	// "ooc": true on GET /v1/ops accept it.
	Storage *StorageSpec `json:"storage,omitempty"`
}

// Result is a finished job's payload: the JSON body of
// GET /v1/jobs/{id}/result.
type Result struct {
	// ID, Op, N echo the job identity.
	ID string `json:"id"`
	Op string `json:"op"`
	N  int    `json:"n,omitempty"`
	// Data is the row-major output matrix for the matrix ops. For
	// "apsp", unreachable pairs are encoded as null (JSON has no
	// +Inf); for "closure", cells are 0 or 1.
	Data []*float64 `json:"data,omitempty"`
	// Cost and Order are the "matrixchain" outputs: the minimal scalar
	// multiplication count and an optimal parenthesization.
	Cost  *float64 `json:"cost,omitempty"`
	Order string   `json:"order,omitempty"`
	// Perm is the row permutation of a pivoted "lu" job (P·A = L·U):
	// factored row i came from input row Perm[i].
	Perm []int `json:"perm,omitempty"`
	// WallMS is the measured execution wall time in milliseconds.
	WallMS float64 `json:"wall_ms"`
}

// ops maps an op name to its validation needs and executor. Engines
// run at the facade's tuned base/grain (64/128).
var ops = map[string]struct {
	pow2    bool // n must be a power of two
	needsN  bool
	ooc     bool     // accepts a StorageSpec (durable out-of-core path)
	engines []string // selectable algorithms; empty = no engine field
	pivots  []string // selectable pivot strategies; empty = no pivot field
	execute func(spec *Spec, rt *par.Runtime) (*Result, error)
}{
	"multiply":    {pow2: true, needsN: true, ooc: true, engines: []string{"classical", "strassen"}, execute: execMultiply},
	"lu":          {pow2: true, needsN: true, ooc: true, pivots: []string{"none", "tournament"}, execute: execLU},
	"gauss":       {pow2: true, needsN: true, ooc: true, execute: execGauss},
	"apsp":        {pow2: true, needsN: true, ooc: true, execute: execAPSP},
	"closure":     {needsN: true, execute: execClosure},
	"matrixchain": {execute: execMatrixChain},
}

// validate checks a decoded Spec against the server's admission caps
// and returns a client-facing error describing the first problem.
func (s *Spec) validate(maxN int) error {
	op, ok := ops[s.Op]
	if !ok {
		return fmt.Errorf("unknown op %q (want multiply, lu, gauss, apsp, closure or matrixchain)", s.Op)
	}
	if op.needsN {
		if s.N < 1 {
			return fmt.Errorf("op %q requires n >= 1", s.Op)
		}
		if op.pow2 && !matrix.IsPow2(s.N) {
			return fmt.Errorf("op %q requires a power-of-two n, got %d", s.Op, s.N)
		}
	}
	if s.Op == "matrixchain" {
		if len(s.Dims) < 2 {
			return fmt.Errorf(`op "matrixchain" requires dims with at least 2 entries`)
		}
		if len(s.Dims) > maxN {
			return fmt.Errorf("dims length %d exceeds the server cap %d", len(s.Dims), maxN)
		}
		for _, d := range s.Dims {
			if d < 1 {
				return fmt.Errorf("dims entries must be >= 1")
			}
		}
	}
	for name, d := range map[string][]float64{"data": s.Data, "a": s.A, "b": s.B} {
		if len(d) != 0 && len(d) != s.N*s.N {
			return fmt.Errorf("%s has %d cells, want n*n = %d", name, len(d), s.N*s.N)
		}
	}
	if s.Op == "multiply" && (len(s.A) == 0) != (len(s.B) == 0) {
		return fmt.Errorf(`op "multiply" requires both a and b, or neither (seed-generated)`)
	}
	if s.Engine != "" {
		if len(op.engines) == 0 {
			return fmt.Errorf("op %q does not take an engine", s.Op)
		}
		if !slices.Contains(op.engines, s.Engine) {
			return fmt.Errorf("unknown engine %q for op %q (want %s)",
				s.Engine, s.Op, strings.Join(op.engines, " or "))
		}
	}
	if s.Pivot != "" {
		if len(op.pivots) == 0 {
			return fmt.Errorf("op %q does not take a pivot", s.Op)
		}
		if !slices.Contains(op.pivots, s.Pivot) {
			return fmt.Errorf("unknown pivot %q for op %q (want %s)",
				s.Pivot, s.Op, strings.Join(op.pivots, " or "))
		}
		if s.Pivot == "tournament" && s.Storage != nil {
			return fmt.Errorf(`pivot "tournament" is in-core only (omit storage)`)
		}
	}
	if st := s.Storage; st != nil {
		if !st.OutOfCore {
			return fmt.Errorf(`storage requires "out_of_core": true (omit storage for in-core execution)`)
		}
		if !op.ooc {
			return fmt.Errorf("op %q does not support out-of-core storage", s.Op)
		}
		if st.Stripes < 0 || st.Stripes > storageMaxStripes {
			return fmt.Errorf("storage.stripes must be in [0, %d], got %d", storageMaxStripes, st.Stripes)
		}
		if st.TileSide != 0 && (st.TileSide < 8 || !matrix.IsPow2(st.TileSide)) {
			return fmt.Errorf("storage.tile_side must be 0 or a power of two >= 8, got %d", st.TileSide)
		}
		if st.CacheBytes < 0 {
			return fmt.Errorf("storage.cache_bytes must be >= 0, got %d", st.CacheBytes)
		}
		if st.CheckpointEvery < 0 {
			return fmt.Errorf("storage.checkpoint_every must be >= 0, got %d", st.CheckpointEvery)
		}
	}
	return nil
}

// tooLarge reports whether the job exceeds the server's size cap,
// which is admission control (HTTP 413), not spec validity.
func (s *Spec) tooLarge(maxN int) bool { return s.N > maxN }

// execute runs the job's computation with every fork confined to rt.
// It is called on an executor goroutine; the caller handles deadline
// and cancellation by aborting rt.
func (s *Spec) execute(rt *par.Runtime) (*Result, error) {
	return ops[s.Op].execute(s, rt)
}

// Engines run at a small base and grain so even modest jobs exercise
// their runtime's fork-join pool (the per-job counters are the
// isolation evidence, so forking must actually happen).
const (
	execBase  = 32
	execGrain = 32
)

// fromFlat builds an n×n dense matrix from explicit row-major data.
func fromFlat(n int, flat []float64) *matrix.Dense[float64] {
	m := matrix.NewSquare[float64](n)
	for i := 0; i < n; i++ {
		copy(m.Row(i), flat[i*n:(i+1)*n])
	}
	return m
}

// randMatrix generates the deterministic seed input: uniform [0, 1)
// entries, plus n on the diagonal when dominant (so LU and Gaussian
// elimination never hit a zero pivot).
func randMatrix(n int, seed int64, dominant bool) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare[float64](n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.Float64()
		}
		if dominant {
			row[i] += float64(n)
		}
	}
	return m
}

// finite encodes a result matrix for JSON: +Inf (unreachable apsp
// pairs) becomes null.
func finite(m *matrix.Dense[float64]) []*float64 {
	n := m.N()
	out := make([]*float64, 0, n*n)
	for i := 0; i < n; i++ {
		for _, v := range m.Row(i) {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				out = append(out, nil)
			} else {
				v := v
				out = append(out, &v)
			}
		}
	}
	return out
}

func execMultiply(s *Spec, rt *par.Runtime) (*Result, error) {
	var a, b *matrix.Dense[float64]
	if len(s.A) > 0 {
		a, b = fromFlat(s.N, s.A), fromFlat(s.N, s.B)
	} else {
		a, b = randMatrix(s.N, s.Seed, false), randMatrix(s.N, s.Seed+1, false)
	}
	if s.Storage != nil {
		// Crossover n = purely classical tile loop (bit-identical to
		// the fused in-core engine); 32 matches the in-core Strassen
		// crossover so both engines agree bit-for-bit.
		crossover := s.N
		if s.Engine == "strassen" {
			crossover = 32
		}
		c, err := runDurableMultiply(s.Storage, rt, a, b, crossover)
		if err != nil {
			return nil, err
		}
		return &Result{Data: finite(c)}, nil
	}
	c := matrix.NewSquare[float64](s.N)
	if s.Engine == "strassen" {
		// Crossover 32 rather than the wall-clock-tuned default so
		// even modest jobs actually recurse sub-cubically (and fork on
		// the job's private runtime), mirroring execBase/execGrain.
		linalg.MulStrassenParallelOn(rt, c, a, b, linalg.WithCrossover(32))
	} else {
		linalg.MulFusedParallelOn(rt, c, a, b, execBase, execGrain)
	}
	return &Result{Data: finite(c)}, nil
}

func inPlaceInput(s *Spec) *matrix.Dense[float64] {
	if len(s.Data) > 0 {
		return fromFlat(s.N, s.Data)
	}
	return randMatrix(s.N, s.Seed, true)
}

func execLU(s *Spec, rt *par.Runtime) (*Result, error) {
	if s.Pivot == "tournament" {
		// Pivoting makes diagonal dominance unnecessary, so seeded
		// inputs are general random matrices — the workload the
		// pivot-free path cannot take.
		var m *matrix.Dense[float64]
		if len(s.Data) > 0 {
			m = fromFlat(s.N, s.Data)
		} else {
			m = randMatrix(s.N, s.Seed, false)
		}
		f, err := linalg.FactorCAParallelOn(rt, m, linalg.WithPanelWidth(execBase), linalg.WithCAGrain(execGrain))
		if err != nil {
			return nil, err
		}
		return &Result{Data: finite(f.LU), Perm: f.Perm}, nil
	}
	m := inPlaceInput(s)
	if s.Storage != nil {
		out, err := runDurableGEP(s.Storage, rt, m, core.LUFactor[float64]{}, core.LU{})
		if err != nil {
			return nil, err
		}
		return &Result{Data: finite(out)}, nil
	}
	linalg.LUFusedParallelOn(rt, m, execBase, execGrain)
	return &Result{Data: finite(m)}, nil
}

func execGauss(s *Spec, rt *par.Runtime) (*Result, error) {
	m := inPlaceInput(s)
	if s.Storage != nil {
		out, err := runDurableGEP(s.Storage, rt, m, core.GaussElim[float64]{}, core.Gaussian{})
		if err != nil {
			return nil, err
		}
		return &Result{Data: finite(out)}, nil
	}
	linalg.GaussFusedParallelOn(rt, m, execBase, execGrain)
	return &Result{Data: finite(m)}, nil
}

func execAPSP(s *Spec, rt *par.Runtime) (*Result, error) {
	var d *matrix.Dense[float64]
	if len(s.Data) > 0 {
		// Explicit weights: zero off-diagonal = no edge = +Inf.
		d = matrix.NewSquare[float64](s.N)
		for i := 0; i < s.N; i++ {
			row := d.Row(i)
			for j := range row {
				switch v := s.Data[i*s.N+j]; {
				case i == j:
					row[j] = 0
				case v == 0:
					row[j] = apsp.Inf
				default:
					row[j] = v
				}
			}
		}
	} else {
		g := apsp.Random(s.N, 0.25, 100, s.Seed)
		d = g.DistanceMatrix()
	}
	if s.Storage != nil {
		out, err := runDurableGEP(s.Storage, rt, d, core.MinPlus[float64]{}, core.Full{})
		if err != nil {
			return nil, err
		}
		return &Result{Data: finite(out)}, nil
	}
	apsp.FWFusedParallelOn(rt, d, execBase, execGrain)
	return &Result{Data: finite(d)}, nil
}

func execClosure(s *Spec, rt *par.Runtime) (*Result, error) {
	reach := matrix.NewSquare[bool](s.N)
	if len(s.Data) > 0 {
		for i := 0; i < s.N; i++ {
			for j := 0; j < s.N; j++ {
				reach.Set(i, j, s.Data[i*s.N+j] != 0)
			}
		}
	} else {
		rng := rand.New(rand.NewSource(s.Seed))
		for i := 0; i < s.N; i++ {
			for j := 0; j < s.N; j++ {
				reach.Set(i, j, rng.Float64() < 0.1)
			}
		}
	}
	apsp.ClosureParallelOn(rt, reach, execBase)
	out := make([]*float64, 0, s.N*s.N)
	zero, one := 0.0, 1.0
	for i := 0; i < s.N; i++ {
		for j := 0; j < s.N; j++ {
			if reach.At(i, j) {
				out = append(out, &one)
			} else {
				out = append(out, &zero)
			}
		}
	}
	return &Result{Data: out}, nil
}

func execMatrixChain(s *Spec, _ *par.Runtime) (*Result, error) {
	cost, order := dp.MatrixChainOrder(s.Dims)
	return &Result{Cost: &cost, Order: order}, nil
}
