package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"net/http"
	"slices"
	"strconv"
	"time"

	"gep/internal/metrics"
)

// eventInterval is the SSE status-poll cadence of /events.
const eventInterval = 100 * time.Millisecond

// Handler returns the server's route table. Endpoints, bodies and
// error codes are documented in docs/API.md; that file's curl
// examples are replayed against this handler by api_examples_test.go.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ops", s.handleOps)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// writeJSON sends v with the given status as a JSON body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr renders err as the documented error envelope
// {"error":{"code":..., "message":...}}, mapping *apiErr to its HTTP
// status and anything else to 500.
func writeErr(w http.ResponseWriter, err error) {
	var ae *apiErr
	if !errors.As(err, &ae) {
		ae = &apiErr{http.StatusInternalServerError, "internal", err.Error()}
	}
	if ae.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, ae.status, map[string]any{
		"error": map[string]string{"code": ae.code, "message": ae.msg},
	})
}

// handleOps describes the submittable operations: their admission
// constraints, the engine names the "engine" field accepts where an op
// has selectable algorithms — multiply advertises "strassen": true so
// clients can feature-detect the sub-cubic path — and "ooc": true on
// ops that accept a "storage" object (the durable out-of-core path).
// The top-level "capabilities" list lets clients feature-detect server
// facilities that cut across ops; "durability" means StorageSpec jobs
// run on checksummed, journaled striped stores.
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{}
	for name, op := range ops {
		info := map[string]any{"pow2": op.pow2, "needs_n": op.needsN, "ooc": op.ooc}
		if len(op.engines) > 0 {
			info["engines"] = op.engines
			info["strassen"] = slices.Contains(op.engines, "strassen")
		}
		if len(op.pivots) > 0 {
			info["pivots"] = op.pivots
		}
		out[name] = info
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ops":          out,
		"capabilities": []string{"durability"},
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, &apiErr{http.StatusBadRequest, "invalid_request", "bad JSON body: " + err.Error()})
		return
	}
	v, err := s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+v.ID)
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, &apiErr{http.StatusNotFound, "not_found", "no job " + strconv.Quote(r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.ResultOf(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleEvents streams the job's status as server-sent events: one
// "status" event per poll tick while the job is live, then a final
// "done" event carrying the terminal view, then the stream closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeErr(w, &apiErr{http.StatusNotFound, "not_found", "no job " + strconv.Quote(id)})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &apiErr{http.StatusInternalServerError, "internal", "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v JobView) {
		b, _ := json.Marshal(v)
		w.Write([]byte("event: " + event + "\ndata: "))
		w.Write(b)
		w.Write([]byte("\n\n"))
		fl.Flush()
	}
	t := time.NewTicker(eventInterval)
	defer t.Stop()
	for {
		v, ok := s.Get(id)
		if !ok { // evicted mid-stream
			return
		}
		if v.Status.Terminal() {
			emit("done", v)
			return
		}
		emit("status", v)
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// handleMetrics reports the process-wide counter aggregate (the
// default registry, also published on /debug/vars as "gep.metrics")
// alongside each retained job's private runtime counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make(map[string]map[string]int64)
	for _, id := range s.order {
		j := s.jobs[id]
		if j.status.Terminal() {
			if len(j.metrics) > 0 {
				jobs[id] = j.metrics
			}
		} else if j.rt != nil {
			jobs[id] = j.rt.Metrics().Snapshot()
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"aggregate": metrics.Snapshot(),
		"jobs":      jobs,
	})
}
