package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gep/internal/linalg"
)

// newTestServer starts a server over httptest and tears both down at
// the end of the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec any) (*http.Response, JobView) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if resp.StatusCode == http.StatusAccepted {
		decodeBody(t, resp, &v)
	}
	return resp, v
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode body: %v", err)
	}
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		decodeBody(t, resp, &v)
		if v.Status.Terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobView{}
}

// TestJobLifecycle walks the happy path end to end over HTTP: submit,
// poll, fetch the result, and check it against a serial recomputation.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, v := postJob(t, ts, Spec{Op: "multiply", N: 64, Seed: 7})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if v.ID == "" || v.Status != StatusQueued {
		t.Fatalf("submit view: %+v", v)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Fatalf("Location = %q", loc)
	}

	fin := waitTerminal(t, ts, v.ID)
	if fin.Status != StatusDone {
		t.Fatalf("job finished %s (%s), want done", fin.Status, fin.Error)
	}
	if fin.Tasks == 0 || fin.Metrics == nil {
		t.Fatalf("terminal view lacks runtime metrics: %+v", fin)
	}

	rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	decodeBody(t, rr, &res)
	if res.ID != v.ID || res.Op != "multiply" || len(res.Data) != 64*64 {
		t.Fatalf("result shape: id=%s op=%s cells=%d", res.ID, res.Op, len(res.Data))
	}

	// Recompute serially from the same seed and compare a few cells.
	a, b := randMatrix(64, 7, false), randMatrix(64, 8, false)
	for _, ij := range [][2]int{{0, 0}, {13, 41}, {63, 63}} {
		i, j := ij[0], ij[1]
		want := 0.0
		for k := 0; k < 64; k++ {
			want += a.At(i, k) * b.At(k, j)
		}
		got := res.Data[i*64+j]
		if got == nil || math.Abs(*got-want) > 1e-9 {
			t.Fatalf("c[%d,%d]: got %v, want %v", i, j, got, want)
		}
	}
}

// TestConcurrentJobIsolation is the acceptance criterion: two jobs
// running concurrently on disjoint worker budgets both complete, and
// each job's own runtime counters prove its pooled tasks all executed
// inside its own runtime — neither tenant occupied the other's
// workers.
func TestConcurrentJobIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, DefaultWorkers: 2, MaxWorkers: 4})

	var ids [2]string
	for i := range ids {
		resp, v := postJob(t, ts, Spec{Op: "lu", N: 256, Seed: int64(i), Workers: 2})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids[i] = v.ID
	}

	var wg sync.WaitGroup
	views := make([]JobView, 2)
	for i, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			views[i] = waitTerminal(t, ts, id)
		}()
	}
	wg.Wait()

	for i, v := range views {
		if v.Status != StatusDone {
			t.Fatalf("job %d finished %s (%s)", i, v.Status, v.Error)
		}
		pooled := v.Metrics["par.spawn.pooled"]
		executed := v.Metrics["par.local"] + v.Metrics["par.steal"] + v.Metrics["par.help"]
		if pooled == 0 {
			t.Errorf("job %d: no pooled spawns — it did not run on its own runtime", i)
		}
		if pooled != executed {
			t.Errorf("job %d: pooled=%d but local+steal+help=%d — work leaked across runtimes",
				i, pooled, executed)
		}
	}
}

// TestMultiplyEngineStrassen submits the same multiply twice — default
// classical engine and "engine": "strassen" — and requires the
// Strassen result to agree with the classical one within the engine's
// published error bound; /v1/ops must advertise the engine.
func TestMultiplyEngineStrassen(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, DefaultWorkers: 2, MaxWorkers: 4})

	const n = 64
	specs := []Spec{
		{Op: "multiply", N: n, Seed: 11},
		{Op: "multiply", N: n, Seed: 11, Engine: "strassen"},
	}
	results := make([]Result, len(specs))
	for i, spec := range specs {
		resp, v := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit engine=%q: status %d", spec.Engine, resp.StatusCode)
		}
		if fin := waitTerminal(t, ts, v.ID); fin.Status != StatusDone {
			t.Fatalf("engine=%q finished %s (%s)", spec.Engine, fin.Status, fin.Error)
		}
		rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, rr, &results[i])
	}
	a, b := randMatrix(n, 11, false), randMatrix(n, 12, false)
	var maxA, maxB float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			maxA = math.Max(maxA, math.Abs(a.At(i, j)))
			maxB = math.Max(maxB, math.Abs(b.At(i, j)))
		}
	}
	bound := linalg.StrassenErrorBound(n, 32, maxA, maxB)
	for i := range results[0].Data {
		cl, st := results[0].Data[i], results[1].Data[i]
		if cl == nil || st == nil {
			t.Fatalf("cell %d: nil output", i)
		}
		if d := math.Abs(*cl - *st); d > bound {
			t.Fatalf("cell %d: |classical-strassen| = %g exceeds bound %g", i, d, bound)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/ops")
	if err != nil {
		t.Fatal(err)
	}
	var caps struct {
		Ops map[string]struct {
			Engines  []string `json:"engines"`
			Strassen bool     `json:"strassen"`
		} `json:"ops"`
	}
	decodeBody(t, resp, &caps)
	if mul, ok := caps.Ops["multiply"]; !ok || !mul.Strassen || len(mul.Engines) != 2 {
		t.Fatalf("/v1/ops multiply capabilities: %+v", caps.Ops["multiply"])
	}
	if lu, ok := caps.Ops["lu"]; !ok || lu.Strassen || lu.Engines != nil {
		t.Fatalf("/v1/ops lu should not advertise engines: %+v", caps.Ops["lu"])
	}
}

// TestLUTournamentPivot submits "lu" with "pivot": "tournament" and
// checks the returned factors against the seeded input: Perm must be a
// permutation and P·A = L·U must hold to machine precision. /v1/ops
// must advertise the pivot strategies, and the validation paths
// (pivot on an op without pivots, unknown strategy, tournament
// combined with storage, singular input) must reject cleanly.
func TestLUTournamentPivot(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, DefaultWorkers: 2, MaxWorkers: 4})

	const n = 64
	resp, v := postJob(t, ts, Spec{Op: "lu", N: n, Seed: 21, Pivot: "tournament"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit pivoted lu: status %d", resp.StatusCode)
	}
	if fin := waitTerminal(t, ts, v.ID); fin.Status != StatusDone {
		t.Fatalf("pivoted lu finished %s (%s)", fin.Status, fin.Error)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	decodeBody(t, rr, &res)
	if len(res.Data) != n*n || len(res.Perm) != n {
		t.Fatalf("result shape: cells=%d perm=%d", len(res.Data), len(res.Perm))
	}
	seen := make([]bool, n)
	for _, p := range res.Perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("perm is not a permutation: %v", res.Perm)
		}
		seen[p] = true
	}
	lu := func(i, j int) float64 {
		c := res.Data[i*n+j]
		if c == nil {
			t.Fatalf("lu[%d,%d]: non-finite output", i, j)
		}
		return *c
	}
	// The seeded tournament input is the general (non-dominant) random
	// matrix; reconstruct (L·U)[i,j] and compare to (P·A)[i,j].
	a := randMatrix(n, 21, false)
	for _, ij := range [][2]int{{0, 0}, {0, n - 1}, {13, 41}, {41, 13}, {n - 1, n - 1}} {
		i, j := ij[0], ij[1]
		sum := 0.0
		for k := 0; k <= min(i, j); k++ {
			l := lu(i, k)
			if k == i {
				l = 1
			}
			sum += l * lu(k, j)
		}
		if want := a.At(res.Perm[i], j); math.Abs(sum-want) > 1e-9 {
			t.Fatalf("(L·U)[%d,%d] = %g, want (P·A) = %g", i, j, sum, want)
		}
	}

	opsResp, err := http.Get(ts.URL + "/v1/ops")
	if err != nil {
		t.Fatal(err)
	}
	var caps struct {
		Ops map[string]struct {
			Pivots []string `json:"pivots"`
		} `json:"ops"`
	}
	decodeBody(t, opsResp, &caps)
	if got := caps.Ops["lu"].Pivots; len(got) != 2 || got[0] != "none" || got[1] != "tournament" {
		t.Fatalf(`/v1/ops lu pivots = %v, want ["none", "tournament"]`, got)
	}
	if got := caps.Ops["multiply"].Pivots; got != nil {
		t.Fatalf("/v1/ops multiply should not advertise pivots: %v", got)
	}

	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"pivot on multiply", Spec{Op: "multiply", N: 64, Pivot: "tournament"}},
		{"unknown strategy", Spec{Op: "lu", N: 64, Pivot: "rook"}},
		{"tournament with storage", Spec{Op: "lu", N: 64, Pivot: "tournament",
			Storage: &StorageSpec{OutOfCore: true}}},
	} {
		if resp, _ := postJob(t, ts, tc.spec); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	// A singular explicit input fails the job rather than returning
	// garbage factors: the error names the singularity.
	data := make([]float64, n*n) // all-zero matrix
	resp, v = postJob(t, ts, Spec{Op: "lu", N: n, Data: data, Pivot: "tournament"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit singular: status %d", resp.StatusCode)
	}
	if fin := waitTerminal(t, ts, v.ID); fin.Status != StatusFailed || !strings.Contains(fin.Error, "singular") {
		t.Fatalf("singular input finished %s (%q), want failed with singular error", fin.Status, fin.Error)
	}
}

// TestAdmissionControl exercises every rejection path: bad op, bad
// size, oversized job, queue overflow, worker/deadline caps.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 1, MaxConcurrent: 1, MaxN: 512, MaxWorkers: 2})

	cases := []struct {
		name string
		spec Spec
		code int
	}{
		{"unknown op", Spec{Op: "qr", N: 64}, http.StatusBadRequest},
		{"non-pow2", Spec{Op: "lu", N: 65}, http.StatusBadRequest},
		{"too large", Spec{Op: "lu", N: 1024}, http.StatusRequestEntityTooLarge},
		{"workers over cap", Spec{Op: "lu", N: 64, Workers: 99}, http.StatusBadRequest},
		{"deadline over cap", Spec{Op: "lu", N: 64, DeadlineMS: int64(time.Hour / time.Millisecond * 100)}, http.StatusBadRequest},
		{"bad data length", Spec{Op: "lu", N: 64, Data: []float64{1, 2, 3}}, http.StatusBadRequest},
		{"one multiply operand", Spec{Op: "multiply", N: 2, A: []float64{1, 2, 3, 4}}, http.StatusBadRequest},
		{"matrixchain no dims", Spec{Op: "matrixchain"}, http.StatusBadRequest},
		{"unknown engine", Spec{Op: "multiply", N: 64, Engine: "coppersmith"}, http.StatusBadRequest},
		{"engine on engineless op", Spec{Op: "lu", N: 64, Engine: "strassen"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := postJob(t, ts, tc.spec)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}

	// Overflow: the single executor is busy with a slow job, the depth-1
	// queue holds one more, the next submission must bounce with 429.
	if _, err := s.Submit(Spec{Op: "apsp", N: 512, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the executor pick it up
	if _, err := s.Submit(Spec{Op: "lu", N: 64}); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJob(t, ts, Spec{Op: "lu", N: 64})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestDeadlineAborts checks that a job blowing its deadline is failed
// (not wedged) and reports a deadline error.
func TestDeadlineAborts(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultWorkers: 1})
	resp, v := postJob(t, ts, Spec{Op: "apsp", N: 1024, DeadlineMS: 30})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	fin := waitTerminal(t, ts, v.ID)
	if fin.Status != StatusFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("finished %s (%q), want failed with deadline error", fin.Status, fin.Error)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("result of failed job: status %d, want 409", rr.StatusCode)
	}
}

// TestCancelQueuedAndRunning cancels one queued and one running job
// through the API and checks both report canceled.
func TestCancelQueuedAndRunning(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, DefaultWorkers: 1})

	_, running := postJob(t, ts, Spec{Op: "apsp", N: 1024})
	time.Sleep(30 * time.Millisecond) // executor picks it up
	_, queued := postJob(t, ts, Spec{Op: "lu", N: 64})

	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: status %d", id, resp.StatusCode)
		}
	}
	for _, id := range []string{queued.ID, running.ID} {
		if fin := waitTerminal(t, ts, id); fin.Status != StatusCanceled {
			t.Fatalf("job %s finished %s, want canceled", id, fin.Status)
		}
	}
}

// TestEventsStream reads the SSE stream of a job and checks it ends
// with a "done" event carrying the terminal status.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, v := postJob(t, ts, Spec{Op: "lu", N: 256})

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var last, lastData string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			last = ev
		}
		if d, ok := strings.CutPrefix(line, "data: "); ok {
			lastData = d
		}
	}
	if last != "done" {
		t.Fatalf("stream ended with event %q, want done", last)
	}
	var fin JobView
	if err := json.Unmarshal([]byte(lastData), &fin); err != nil {
		t.Fatal(err)
	}
	if !fin.Status.Terminal() {
		t.Fatalf("done event carries non-terminal status %s", fin.Status)
	}
}

// TestOpsMatrixChainAndClosure covers the two non-pow2 ops end to end.
func TestOpsMatrixChainAndClosure(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	_, v := postJob(t, ts, Spec{Op: "matrixchain", Dims: []int{10, 30, 5, 60}})
	fin := waitTerminal(t, ts, v.ID)
	if fin.Status != StatusDone {
		t.Fatalf("matrixchain finished %s (%s)", fin.Status, fin.Error)
	}
	res, err := s.ResultOf(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost == nil || *res.Cost != 4500 {
		t.Fatalf("matrixchain cost = %v, want 4500", res.Cost)
	}
	if res.Order == "" {
		t.Fatal("matrixchain returned no parenthesization")
	}

	// A 3-node path: closure must add the transitive 0→2 edge.
	_, v = postJob(t, ts, Spec{Op: "closure", N: 3, Data: []float64{
		1, 1, 0,
		0, 1, 1,
		0, 0, 1,
	}})
	if fin = waitTerminal(t, ts, v.ID); fin.Status != StatusDone {
		t.Fatalf("closure finished %s (%s)", fin.Status, fin.Error)
	}
	res, err = s.ResultOf(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := *res.Data[0*3+2]; got != 1 {
		t.Fatalf("closure missed the transitive edge 0->2 (got %v)", got)
	}
}

// TestShutdownDrains submits jobs, begins shutdown mid-flight with a
// generous context, and checks every admitted job still completes
// while new submissions are refused with 503.
func TestShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, DefaultWorkers: 2})

	var ids []string
	for i := 0; i < 4; i++ {
		resp, v := postJob(t, ts, Spec{Op: "lu", N: 256, Seed: int64(i)})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()

	// Admission must close promptly even while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postJob(t, ts, Spec{Op: "lu", N: 64})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server kept accepting jobs")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := <-done; err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	for i, id := range ids {
		v, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %d evicted during drain", i)
		}
		if v.Status != StatusDone {
			t.Fatalf("job %d finished %s (%s), want done after drain", i, v.Status, v.Error)
		}
	}
}

// TestShutdownAbortsOnExpiry checks the other shutdown arm: a context
// that expires immediately forces in-flight jobs to cancel rather
// than letting Shutdown block.
func TestShutdownAbortsOnExpiry(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, DefaultWorkers: 1})
	if _, err := s.Submit(Spec{Op: "apsp", N: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Spec{Op: "lu", N: 256}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 20*time.Second {
		t.Fatalf("abort path took %v — in-flight jobs were not interrupted", el)
	}
	for _, v := range s.List() {
		if !v.Status.Terminal() {
			t.Fatalf("job %s left %s after forced shutdown", v.ID, v.Status)
		}
	}
}

// TestMetricsEndpoint checks /metrics exposes the aggregate plus the
// finished job's private counters, and /debug/vars serves expvar.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, v := postJob(t, ts, Spec{Op: "lu", N: 128})
	waitTerminal(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Aggregate map[string]int64            `json:"aggregate"`
		Jobs      map[string]map[string]int64 `json:"jobs"`
	}
	decodeBody(t, resp, &body)
	jm, ok := body.Jobs[v.ID]
	if !ok {
		t.Fatalf("/metrics lacks job %s; have %v", v.ID, body.Jobs)
	}
	if jm["par.spawn.pooled"]+jm["par.spawn.inline"] == 0 {
		t.Fatalf("job %s counters empty: %v", v.ID, jm)
	}

	dv, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(dv.Body)
	dv.Body.Close()
	if !bytes.Contains(raw, []byte("gep.metrics")) {
		t.Fatal("/debug/vars does not publish gep.metrics")
	}
}

// TestHealthz checks the health endpoint flips to draining.
func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func() string {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var b map[string]string
		decodeBody(t, resp, &b)
		return b["status"]
	}
	if st := get(); st != "ok" {
		t.Fatalf("healthz = %q, want ok", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if st := get(); st != "draining" {
		t.Fatalf("healthz after Shutdown = %q, want draining", st)
	}
}

// TestRetention checks finished jobs are evicted oldest-first once
// the retention bound is exceeded.
func TestRetention(t *testing.T) {
	_, ts := newTestServer(t, Config{RetainJobs: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		_, v := postJob(t, ts, Spec{Op: "matrixchain", Dims: []int{2, 3, 4}})
		waitTerminal(t, ts, v.ID)
		ids = append(ids, v.ID)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("oldest job still present: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	decodeBody(t, resp, &list)
	if len(list.Jobs) != 2 {
		t.Fatalf("retained %d jobs, want 2", len(list.Jobs))
	}
}
