// Package serve is the GEP job service: an HTTP API that turns the
// in-core engines into a long-running multi-tenant compute server
// (cmd/gep-server). Clients submit matrix, graph and DP jobs as JSON,
// poll or stream their progress, and fetch results; the server runs
// each job on its own isolated par.Runtime so concurrent tenants can
// never occupy each other's worker budgets (DESIGN.md §14).
//
// The pieces, and where they live:
//
//   - Spec (spec.go) is the submitted job description: an op name
//     mapping to a facade operation ("multiply", "lu", "gauss",
//     "apsp", "closure", "matrixchain"), a problem size with either
//     explicit row-major input data or a deterministic random seed,
//     and optional per-job worker-budget and deadline overrides.
//   - Job (job.go) is one admitted job's lifecycle: queued → running →
//     done/failed/canceled, with timestamps, the per-runtime scheduler
//     counters snapshotted into the final status, and a cancel hook.
//   - Server (server.go) owns the bounded job queue, the fixed set of
//     executor goroutines (Config.MaxConcurrent), admission control
//     (queue-full and size-cap rejections with Retry-After), per-job
//     deadlines and cancellation via context, and graceful shutdown:
//     Shutdown stops admissions, drains queued and running jobs, and
//     aborts whatever is still in flight when its context expires.
//   - The HTTP layer (handlers.go) is the stdlib-only route table
//     documented endpoint by endpoint in docs/API.md, whose curl
//     examples are replayed against a live server by
//     api_examples_test.go.
//
// Isolation is the load-bearing property: every job gets a fresh
// par.Runtime sized to its worker budget, engines run through the
// ...On entry points (e.g. linalg.MulFusedParallelOn) so all forks
// stay on that runtime, cancellation maps to Runtime.Abort, and the
// job's "par.*" counters come from the runtime's private metrics
// registry — which is how /metrics reports per-job scheduler activity
// next to the process-wide aggregate from /debug/vars.
package serve
