package gep_test

import (
	"math"
	"math/rand"
	"testing"

	"gep"
)

// Facade-level tests: exercise the public API exactly as a downstream
// user would.

func TestIterativeVsCacheObliviousFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 32
	d := gep.NewMatrix[float64](n)
	d.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		if rng.Float64() < 0.4 {
			return math.Inf(1)
		}
		return float64(rng.Intn(100) + 1)
	})
	minPlus := gep.UpdateFunc[float64](func(i, j, k int, x, u, v, w float64) float64 {
		if s := u + v; s < x {
			return s
		}
		return x
	})
	want := d.Clone()
	gep.Iterative[float64](want, minPlus, gep.Full)
	got := d.Clone()
	gep.CacheOblivious[float64](got, minPlus, gep.Full, gep.WithBaseSize[float64](8))
	if !got.EqualFunc(want, func(a, b float64) bool { return a == b }) {
		t.Fatal("CacheOblivious differs from Iterative on Floyd-Warshall")
	}
	par := d.Clone()
	gep.Parallel[float64](par, minPlus, gep.Full, gep.WithParallel[float64](8))
	if !par.EqualFunc(want, func(a, b float64) bool { return a == b }) {
		t.Fatal("Parallel differs from Iterative on Floyd-Warshall")
	}
}

func TestGeneralMatchesIterativeAlways(t *testing.T) {
	// The paper's §2.2.1 counterexample through the public API.
	sum := gep.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w })
	in := gep.FromRows([][]int64{{0, 0}, {0, 1}})

	g := in.Clone()
	gep.Iterative[int64](g, sum, gep.Full)
	f := in.Clone()
	// Base 1: the §2.2.1 divergence belongs to the pure recursion; the
	// automatic base size would run this 2×2 instance as one iterative
	// block and coincide with Iterative.
	gep.CacheOblivious[int64](f, sum, gep.Full, gep.WithBaseSize[int64](1))
	if f.At(1, 0) == g.At(1, 0) {
		t.Fatal("expected I-GEP to diverge on the counterexample")
	}
	for name, run := range map[string]func(*gep.Matrix[int64]){
		"General":        func(m *gep.Matrix[int64]) { gep.General[int64](m, sum, gep.Full) },
		"GeneralCompact": func(m *gep.Matrix[int64]) { gep.GeneralCompact[int64](m, sum, gep.Full) },
	} {
		h := in.Clone()
		run(h)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if h.At(i, j) != g.At(i, j) {
					t.Fatalf("%s differs from Iterative at (%d,%d)", name, i, j)
				}
			}
		}
	}
}

func TestPredicateSet(t *testing.T) {
	n := 8
	set := gep.Predicate(func(i, j, k int) bool { return (i+j+k)%2 == 0 })
	f := gep.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u - v + 2*w })
	in := gep.NewMatrix[int64](n)
	in.Apply(func(i, j int, _ int64) int64 { return int64(i*n + j) })
	want := in.Clone()
	gep.Iterative[int64](want, f, set)
	got := in.Clone()
	gep.General[int64](got, f, set)
	if !got.EqualFunc(want, func(a, b int64) bool { return a == b }) {
		t.Fatal("General differs from Iterative on a predicate set")
	}
}

func TestMultiply(t *testing.T) {
	n := 64
	rng := rand.New(rand.NewSource(2))
	a := gep.NewMatrix[float64](n)
	b := gep.NewMatrix[float64](n)
	a.Apply(func(i, j int, _ float64) float64 { return rng.Float64() })
	b.Apply(func(i, j int, _ float64) float64 { return rng.Float64() })
	c := gep.NewMatrix[float64](n)
	gep.Multiply(c, a, b)
	cp := gep.NewMatrix[float64](n)
	gep.MultiplyParallel(cp, a, b)

	// Spot-check against a direct dot product.
	for _, ij := range [][2]int{{0, 0}, {3, 7}, {63, 1}, {31, 31}} {
		i, j := ij[0], ij[1]
		dot := 0.0
		for k := 0; k < n; k++ {
			dot += a.At(i, k) * b.At(k, j)
		}
		if math.Abs(c.At(i, j)-dot) > 1e-10 {
			t.Fatalf("Multiply wrong at (%d,%d): %g vs %g", i, j, c.At(i, j), dot)
		}
		if c.At(i, j) != cp.At(i, j) {
			t.Fatalf("MultiplyParallel differs at (%d,%d)", i, j)
		}
	}
}

func TestMultiplyStrassen(t *testing.T) {
	for _, n := range []int{64, 97} { // pow2 and odd (peeled) sides
		rng := rand.New(rand.NewSource(4))
		a := gep.NewMatrix[float64](n)
		b := gep.NewMatrix[float64](n)
		a.Apply(func(i, j int, _ float64) float64 { return rng.Float64()*2 - 1 })
		b.Apply(func(i, j int, _ float64) float64 { return rng.Float64()*2 - 1 })
		c := gep.NewMatrix[float64](n)
		gep.MultiplyStrassen(c, a, b)
		cp := gep.NewMatrix[float64](n)
		gep.MultiplyStrassenParallel(cp, a, b)
		if !c.EqualFunc(cp, func(x, y float64) bool { return x == y }) {
			t.Fatal("MultiplyStrassenParallel not bit-identical to MultiplyStrassen")
		}
		for _, ij := range [][2]int{{0, 0}, {3, 7}, {n - 1, 1}, {n / 2, n / 2}} {
			i, j := ij[0], ij[1]
			dot := 0.0
			for k := 0; k < n; k++ {
				dot += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(c.At(i, j)-dot) > 1e-9 {
				t.Fatalf("MultiplyStrassen n=%d wrong at (%d,%d): %g vs %g", n, i, j, c.At(i, j), dot)
			}
		}
	}
}

func TestFloydWarshallNonPow2(t *testing.T) {
	d := gep.FromRows([][]float64{
		{0, 4, math.Inf(1)},
		{math.Inf(1), 0, 1},
		{2, math.Inf(1), 0},
	})
	gep.FloydWarshall(d)
	want := [][]float64{{0, 4, 5}, {3, 0, 1}, {2, 6, 0}}
	for i := range want {
		for j := range want[i] {
			if d.At(i, j) != want[i][j] {
				t.Fatalf("d[%d][%d] = %g, want %g", i, j, d.At(i, j), want[i][j])
			}
		}
	}
}

func TestFloydWarshallParallelNonPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 3, 5, 12, 33} {
		d := gep.NewMatrix[float64](n)
		d.Apply(func(i, j int, _ float64) float64 {
			if i == j {
				return 0
			}
			if rng.Float64() < 0.3 {
				return math.Inf(1)
			}
			return float64(rng.Intn(100) + 1)
		})
		ref := d.Clone()
		gep.FloydWarshall(ref)
		gep.FloydWarshallParallel(d)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.At(i, j) != ref.At(i, j) {
					t.Fatalf("n=%d: parallel FW differs at (%d,%d): %g vs %g",
						n, i, j, d.At(i, j), ref.At(i, j))
				}
			}
		}
	}
}

func TestSolveNonPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{5, 16, 37} {
		a := gep.NewMatrix[float64](n)
		a.Apply(func(i, j int, _ float64) float64 {
			if i == j {
				return float64(2 * n)
			}
			return rng.Float64()
		})
		orig := a.Clone()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += orig.At(i, j) * x[j]
			}
		}
		got := gep.Solve(a, b)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d] = %g, want %g", n, i, got[i], x[i])
			}
		}
	}
}

func TestPadCrop(t *testing.T) {
	m := gep.FromRows([][]int{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	p := gep.Pad(m, 0, 1)
	if p.N() != 4 || p.At(3, 3) != 1 || p.At(0, 3) != 0 {
		t.Fatalf("Pad wrong: %v", p)
	}
	back := gep.Crop(p, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if back.At(i, j) != m.At(i, j) {
				t.Fatal("Crop lost data")
			}
		}
	}
}

func TestInvertDeterminantFacade(t *testing.T) {
	a := gep.FromRows([][]float64{{4, 1}, {2, 3}})
	if d := gep.Determinant(a); math.Abs(d-10) > 1e-12 {
		t.Fatalf("det = %g, want 10", d)
	}
	inv := gep.Invert(a)
	want := [][]float64{{0.3, -0.1}, {-0.2, 0.4}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(inv.At(i, j)-want[i][j]) > 1e-12 {
				t.Fatalf("inv[%d][%d] = %g, want %g", i, j, inv.At(i, j), want[i][j])
			}
		}
	}
}

func TestTransitiveClosureFacade(t *testing.T) {
	r := gep.NewMatrix[bool](3)
	r.Set(0, 1, true)
	r.Set(1, 2, true)
	gep.TransitiveClosure(r)
	if !r.At(0, 2) || r.At(2, 0) {
		t.Fatalf("closure wrong: %v", r)
	}
}

func TestMatrixChainFacade(t *testing.T) {
	cost, order := gep.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25})
	if cost != 15125 || order == "" {
		t.Fatalf("MatrixChain = %g, %q", cost, order)
	}
}

func TestAlignFacade(t *testing.T) {
	x, y := "GATTACA", "GCATGCU"
	costs := gep.GapCosts{
		Sub: func(i, j int) float64 {
			if x[i-1] == y[j-1] {
				return 0
			}
			return 1
		},
		GapX: func(p, i int) float64 { return float64(i - p) },
		GapY: func(q, j int) float64 { return float64(j - q) },
	}
	d := gep.Align(len(x), len(y), costs)
	// Unit-cost edit distance of GATTACA/GCATGCU is 4.
	if got := d.At(len(x), len(y)); got != 4 {
		t.Fatalf("alignment cost = %g, want 4", got)
	}
}

func TestCheckLegalityFacade(t *testing.T) {
	sum := gep.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w })
	if r := gep.CheckLegality(sum, gep.Full, 8, 4, 1, nil); r.Legal {
		t.Fatal("sum not flagged illegal")
	}
}

func TestGeneralParallelFacade(t *testing.T) {
	sum := gep.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w })
	in := gep.NewMatrix[int64](16)
	in.Apply(func(i, j int, _ int64) int64 { return int64(i*3 - j) })
	want := in.Clone()
	gep.Iterative[int64](want, sum, gep.Full)
	got := in.Clone()
	gep.GeneralParallel[int64](got, sum, gep.Full, gep.WithParallel[int64](4))
	if !got.EqualFunc(want, func(a, b int64) bool { return a == b }) {
		t.Fatal("GeneralParallel differs from Iterative")
	}
}

func TestParallelFacadeWrappers(t *testing.T) {
	n := 128
	rng := rand.New(rand.NewSource(11))
	d := gep.NewMatrix[float64](n)
	d.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		return float64(rng.Intn(500) + 1)
	})
	serial := d.Clone()
	gep.FloydWarshall(serial)
	par := d.Clone()
	gep.FloydWarshallParallel(par)
	if !par.EqualFunc(serial, func(a, b float64) bool { return a == b }) {
		t.Fatal("FloydWarshallParallel differs from FloydWarshall")
	}

	a := gep.NewMatrix[float64](n)
	a.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return float64(2 * n)
		}
		return rng.Float64()
	})
	s := a.Clone()
	gep.Factorize(s)
	p := a.Clone()
	gep.FactorizeParallel(p)
	if !p.EqualFunc(s, func(x, y float64) bool { return x == y }) {
		t.Fatal("FactorizeParallel differs from Factorize")
	}
}
