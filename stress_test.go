package gep_test

// End-to-end stress tests through the public API, exercising realistic
// non-power-of-two sizes against independent oracles. Guarded by
// -short so quick runs skip them.

import (
	"math"
	"math/rand"
	"testing"

	"gep"
	"gep/internal/apsp"
	"gep/internal/linalg"
)

func TestStressFloydWarshallFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, n := range []int{100, 200, 300} {
		g := apsp.Random(n, 4.0/float64(n), 100, int64(n))
		d := g.DistanceMatrix()
		gep.FloydWarshall(d)
		oracle := apsp.AllPairsDijkstra(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.At(i, j) != oracle.At(i, j) {
					t.Fatalf("n=%d: (%d,%d) = %g, oracle %g", n, i, j, d.At(i, j), oracle.At(i, j))
				}
			}
		}
	}
}

func TestStressSolveAndInvert(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{50, 150, 250} {
		a := gep.NewMatrix[float64](n)
		a.Apply(func(i, j int, _ float64) float64 {
			if i == j {
				return float64(3 * n)
			}
			return rng.NormFloat64()
		})
		orig := a.Clone()

		// Solve against a manufactured solution.
		want := make([]float64, n)
		for i := range want {
			want[i] = math.Sin(float64(i))
		}
		b := linalg.MatVec(orig, want)
		x := gep.Solve(a.Clone(), b)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d] off by %g", n, i, x[i]-want[i])
			}
		}

		// Invert and check A·A⁻¹ ≈ I on sampled entries.
		inv := gep.Invert(orig)
		for trial := 0; trial < 50; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			dot := 0.0
			for k := 0; k < n; k++ {
				dot += orig.At(i, k) * inv.At(k, j)
			}
			wantv := 0.0
			if i == j {
				wantv = 1
			}
			if math.Abs(dot-wantv) > 1e-8 {
				t.Fatalf("n=%d: (A·A⁻¹)[%d][%d] = %g", n, i, j, dot)
			}
		}
	}
}

func TestStressGeneralAgainstIterative(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(8))
	fs := []gep.UpdateFunc[int64]{
		func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w },
		func(i, j, k int, x, u, v, w int64) int64 { return x ^ (u + v*w) },
		func(i, j, k int, x, u, v, w int64) int64 { return 2*x - u + 3*v - 5*w + int64(i*j-k) },
	}
	for _, n := range []int{32, 64, 128} {
		mod := rng.Intn(5) + 2
		rem := rng.Intn(mod)
		set := gep.Predicate(func(i, j, k int) bool { return (i+2*j+3*k)%mod == rem })
		f := fs[rng.Intn(len(fs))]
		in := gep.NewMatrix[int64](n)
		in.Apply(func(i, j int, _ int64) int64 { return rng.Int63n(100) - 50 })
		want := in.Clone()
		gep.Iterative[int64](want, f, set)
		for name, run := range map[string]func(*gep.Matrix[int64]){
			"general": func(m *gep.Matrix[int64]) {
				gep.General[int64](m, f, set, gep.WithBaseSize[int64](8))
			},
			"compact": func(m *gep.Matrix[int64]) {
				gep.GeneralCompact[int64](m, f, set, gep.WithBaseSize[int64](8))
			},
			"parallel": func(m *gep.Matrix[int64]) {
				gep.GeneralParallel[int64](m, f, set, gep.WithBaseSize[int64](8), gep.WithParallel[int64](16))
			},
		} {
			got := in.Clone()
			run(got)
			if !got.EqualFunc(want, func(a, b int64) bool { return a == b }) {
				t.Fatalf("n=%d: %s diverged from Iterative", n, name)
			}
		}
	}
}

func TestStressMatrixChainAgainstIterative(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		n := 60 + trial*30
		dims := make([]int, n+1)
		for i := range dims {
			dims[i] = rng.Intn(40) + 1
		}
		cost, order := gep.MatrixChain(dims)
		if order == "" {
			t.Fatal("empty order")
		}
		// Independent iterative check.
		c := make([][]float64, n+1)
		for i := range c {
			c[i] = make([]float64, n+1)
		}
		for span := 2; span <= n; span++ {
			for i := 0; i+span <= n; i++ {
				j := i + span
				best := math.Inf(1)
				for k := i + 1; k < j; k++ {
					cand := c[i][k] + c[k][j] + float64(dims[i]*dims[k]*dims[j])
					if cand < best {
						best = cand
					}
				}
				c[i][j] = best
			}
		}
		if cost != c[0][n] {
			t.Fatalf("n=%d: cache-oblivious cost %g vs iterative %g", n, cost, c[0][n])
		}
	}
}
