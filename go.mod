module gep

go 1.23
