module gep

go 1.24
