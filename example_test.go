package gep_test

import (
	"fmt"
	"math"

	"gep"
)

func ExampleFloydWarshall() {
	inf := math.Inf(1)
	d := gep.FromRows([][]float64{
		{0, 3, inf, 7},
		{8, 0, 2, inf},
		{5, inf, 0, 1},
		{2, inf, inf, 0},
	})
	gep.FloydWarshall(d)
	fmt.Println(d.At(0, 2), d.At(1, 3), d.At(3, 1))
	// Output: 5 3 5
}

func ExampleSolve() {
	a := gep.FromRows([][]float64{
		{4, 1, 0},
		{1, 5, 2},
		{0, 2, 6},
	})
	x := gep.Solve(a, []float64{5, 8, 8})
	fmt.Printf("%.0f %.0f %.0f\n", x[0], x[1], x[2])
	// Output: 1 1 1
}

func ExampleGeneral() {
	// The paper's §2.2.1 counterexample: f sums its operands, Σ is the
	// full set. Plain I-GEP diverges from the loop nest; C-GEP
	// (General) never does.
	sum := gep.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w })
	c := gep.FromRows([][]int64{{0, 0}, {0, 1}})
	gep.General[int64](c, sum, gep.Full)
	fmt.Println(c.At(1, 0))
	// Output: 2
}

func ExampleIterative() {
	// Count, per cell, how many updates the Gaussian set applies.
	n := 4
	c := gep.NewMatrix[int](n)
	count := gep.UpdateFunc[int](func(i, j, k int, x, u, v, w int) int { return x + 1 })
	gep.Iterative[int](c, count, gep.GaussianSet)
	// Cell (3,3) is updated for k = 0, 1, 2.
	fmt.Println(c.At(3, 3), c.At(0, 0))
	// Output: 3 0
}

func ExampleMultiply() {
	a := gep.FromRows([][]float64{{1, 2}, {3, 4}})
	b := gep.FromRows([][]float64{{5, 6}, {7, 8}})
	c := gep.NewMatrix[float64](2)
	gep.Multiply(c, a, b)
	fmt.Println(c.At(0, 0), c.At(1, 1))
	// Output: 19 50
}

func ExampleTransitiveClosure() {
	r := gep.NewMatrix[bool](4)
	r.Set(0, 1, true)
	r.Set(1, 2, true)
	r.Set(2, 3, true)
	gep.TransitiveClosure(r)
	fmt.Println(r.At(0, 3), r.At(3, 0))
	// Output: true false
}

func ExampleMatrixChain() {
	cost, order := gep.MatrixChain([]int{10, 100, 5, 50})
	fmt.Println(cost, order)
	// Output: 7500 ((A0 A1) A2)
}

func ExampleCheckLegality() {
	sum := gep.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w })
	report := gep.CheckLegality(sum, gep.Full, 8, 5, 1, nil)
	fmt.Println(report.Legal)
	// Output: false
}

func ExampleDeterminant() {
	a := gep.FromRows([][]float64{{6, 1}, {4, 2}})
	fmt.Printf("%.0f\n", gep.Determinant(a))
	// Output: 8
}
