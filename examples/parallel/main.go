// Parallel demo: run multithreaded I-GEP (Figure 6 of the paper) on
// goroutines, check it agrees with the serial recursion, and project
// speedups for 1..8 processors by scheduling the real task DAG — the
// reproduction of the paper's Figure 12 on arbitrary hardware.
package main

import (
	"fmt"
	"runtime"
	"time"

	"gep"
	"gep/internal/linalg"
	"gep/internal/sched"
)

func main() {
	const n = 512

	// Real goroutine execution: multiply two matrices serially and in
	// parallel; results must be bitwise identical.
	a := gep.NewMatrix[float64](n)
	b := gep.NewMatrix[float64](n)
	a.Apply(func(i, j int, _ float64) float64 { return float64((i+j)%17) / 16 })
	b.Apply(func(i, j int, _ float64) float64 { return float64((i*3+j)%13) / 12 })

	serial := gep.NewMatrix[float64](n)
	t0 := time.Now()
	linalg.MulIGEP(serial, a, b, 64)
	ds := time.Since(t0)

	par := gep.NewMatrix[float64](n)
	t0 = time.Now()
	linalg.MulIGEPParallel(par, a, b, 64, 128)
	dp := time.Since(t0)

	if !serial.EqualFunc(par, func(x, y float64) bool { return x == y }) {
		panic("parallel result differs from serial")
	}
	fmt.Printf("matrix multiply n=%d on GOMAXPROCS=%d:\n", n, runtime.GOMAXPROCS(0))
	fmt.Printf("  serial   %v\n  parallel %v  (identical results ✓)\n\n", ds, dp)

	// DAG-level speedup projection (the Figure 12 reproduction): build
	// the true task graph of each workload's recursion and schedule it
	// greedily on p virtual processors.
	fmt.Println("projected speedup from the Figure-6 task DAG (n=1024, grain=64):")
	fmt.Printf("%-4s  %8s  %8s  %8s\n", "p", "MM", "FW", "GE")
	curves := map[sched.Workload][]sched.Speedup{}
	for _, w := range []sched.Workload{sched.MM, sched.FW, sched.GE} {
		curves[w] = sched.SpeedupCurve(sched.BuildPlan(w, 1024, 64), []int{1, 2, 4, 8})
	}
	for idx, p := range []int{1, 2, 4, 8} {
		fmt.Printf("%-4d  %8.2f  %8.2f  %8.2f\n", p,
			curves[sched.MM][idx].Speedup,
			curves[sched.FW][idx].Speedup,
			curves[sched.GE][idx].Speedup)
	}
	fmt.Println("\n(the paper measured 6.0 / 5.73 / 5.33 at p=8 on an 8-way Opteron;")
	fmt.Println(" MM parallelizes best because its disjoint recursion has span O(n))")
}
