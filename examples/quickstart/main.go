// Quickstart: define a GEP computation (an update function f and an
// update set Σ), run it with the three engines, and see why the fully
// general C-GEP engine exists — including the paper's §2.2.1
// counterexample where plain I-GEP diverges from the loop nest.
package main

import (
	"fmt"

	"gep"
)

func main() {
	// --- 1. A standard instance: Floyd-Warshall shortest paths. ----
	// f is min-plus; Σ is the full set. I-GEP is provably exact here.
	inf := 1 << 30
	d := gep.FromRows([][]int{
		{0, 3, inf, 7},
		{8, 0, 2, inf},
		{5, inf, 0, 1},
		{2, inf, inf, 0},
	})
	minPlus := gep.UpdateFunc[int](func(i, j, k int, x, u, v, w int) int {
		if s := u + v; s < x {
			return s
		}
		return x
	})

	ref := d.Clone()
	gep.Iterative[int](ref, minPlus, gep.Full) // the classic O(n³) loop nest

	co := d.Clone()
	gep.CacheOblivious[int](co, minPlus, gep.Full) // I-GEP: O(n³/(B√M)) I/Os

	fmt.Println("Floyd-Warshall distances (cache-oblivious == iterative):")
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if co.At(i, j) != ref.At(i, j) {
				panic("engines disagree on a provably-exact instance!")
			}
			fmt.Printf("%4d", co.At(i, j))
		}
		fmt.Println()
	}

	// --- 2. A custom instance where I-GEP is NOT exact. -------------
	// The paper's 2×2 counterexample: f sums its inputs, Σ is full.
	sum := gep.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w })
	in := gep.FromRows([][]int64{{0, 0}, {0, 1}})

	g := in.Clone()
	gep.Iterative[int64](g, sum, gep.Full)
	f := in.Clone()
	// Base size 1 runs the pure recursion: with the default automatic
	// base, tiny instances execute as one k-outer block, which
	// coincides with the iterative order and hides the divergence.
	gep.CacheOblivious[int64](f, sum, gep.Full, gep.WithBaseSize[int64](1))
	h := in.Clone()
	gep.General[int64](h, sum, gep.Full) // C-GEP: exact for EVERY f, Σ

	fmt.Printf("\nCounterexample (paper §2.2.1), cell c[1][0]:\n")
	fmt.Printf("  iterative GEP : %d\n", g.At(1, 0))
	fmt.Printf("  I-GEP         : %d   <- diverges (this f is outside I-GEP's class)\n", f.At(1, 0))
	fmt.Printf("  C-GEP         : %d   <- always matches the iterative semantics\n", h.At(1, 0))

	// --- 3. A custom update set via a predicate. --------------------
	// Only apply updates where i+j+k is even; C-GEP handles any Σ.
	n := 8
	m := gep.NewMatrix[int64](n)
	m.Apply(func(i, j int, _ int64) int64 { return int64(i + 2*j) })
	set := gep.Predicate(func(i, j, k int) bool { return (i+j+k)%2 == 0 })
	mix := gep.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u*v - w })

	want := m.Clone()
	gep.Iterative[int64](want, mix, set)
	got := m.Clone()
	gep.General[int64](got, mix, set)
	if !got.EqualFunc(want, func(a, b int64) bool { return a == b }) {
		panic("C-GEP must match the iterative semantics")
	}
	fmt.Printf("\nCustom predicate set over an %dx%d matrix: C-GEP == iterative ✓\n", n, n)
}
