// Bioinformatics-flavoured demo of the dynamic-programming companions:
// align two DNA fragments under a non-affine (logarithmic) gap penalty
// with the cache-oblivious gap solver, cross-check the affine special
// case against Gotoh's algorithm, and plan a matrix-product chain with
// the cache-oblivious parenthesis solver.
package main

import (
	"fmt"
	"math"

	"gep"
	"gep/internal/dp"
)

func main() {
	x := "ACGTTACGGATCCGATTACAGGCATCGATCCG"
	y := "ACGTACGGATCGCGATTAAGGCTTCGATCG"

	sub := func(i, j int) float64 {
		if x[i-1] == y[j-1] {
			return 0
		}
		return 3
	}

	// 1. General (concave, logarithmic) gap costs — the case that
	// needs the O(n³)-style gap DP rather than Gotoh.
	logGap := func(a, b int) float64 { return 4 + 2*math.Log2(float64(b-a)+1) }
	costs := gep.GapCosts{Sub: sub, GapX: logGap, GapY: logGap}
	d := gep.Align(len(x), len(y), costs)
	fmt.Printf("sequences: |x|=%d |y|=%d\n", len(x), len(y))
	fmt.Printf("optimal alignment cost, logarithmic gaps: %.3f\n", d.At(len(x), len(y)))

	// 2. Affine special case: the general solver must match Gotoh.
	const open, extend = 5, 1
	aff := gep.Align(len(x), len(y), dp.AffineCosts(sub, open, extend))
	oracle := dp.GotohAffine(len(x), len(y), sub, open, extend)
	got := aff.At(len(x), len(y))
	want := oracle.At(len(x), len(y))
	fmt.Printf("affine gaps: general solver %.0f, Gotoh oracle %.0f", got, want)
	if got != want {
		panic("general gap solver disagrees with Gotoh")
	}
	fmt.Println("  ✓")

	// 3. The parenthesis problem: plan a chain of matrix products
	// (e.g. applying successive substitution-model matrices).
	dims := []int{128, 8, 1024, 64, 4096, 16, 512}
	cost, order := gep.MatrixChain(dims)
	fmt.Printf("\nmatrix chain %v:\n  optimal order %s\n  %.0f scalar multiplications\n", dims, order, cost)

	// Compare with the worst order for drama.
	worst := worstChain(dims)
	fmt.Printf("  (worst order costs %.0f — %.0fx more)\n", worst, worst/cost)
}

// worstChain computes the most expensive parenthesization by the same
// DP with max instead of min (small n, iterative is fine).
func worstChain(dims []int) float64 {
	n := len(dims) - 1
	c := make([][]float64, n+1)
	for i := range c {
		c[i] = make([]float64, n+1)
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span
			worst := math.Inf(-1)
			for k := i + 1; k < j; k++ {
				cand := c[i][k] + c[k][j] + float64(dims[i]*dims[k]*dims[j])
				if cand > worst {
					worst = cand
				}
			}
			c[i][j] = worst
		}
	}
	return c[0][n]
}
