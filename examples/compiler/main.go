// Compiler-transformation demo (§2.3 of the paper): treat I-GEP and
// C-GEP as cache-oblivious tiling transformations for GEP-shaped loop
// nests. For each candidate loop nest, differentially test whether the
// aggressive in-place I-GEP transformation is legal; apply it when it
// is, and fall back to the always-legal C-GEP otherwise — exactly the
// decision procedure an optimizing compiler could use.
package main

import (
	"fmt"

	"gep"
)

// loopNest is a candidate triply nested loop in GEP form.
type loopNest struct {
	name string
	f    gep.UpdateFunc[int64]
	set  gep.UpdateSet
}

func main() {
	nests := []loopNest{
		{
			name: "floyd-warshall (min-plus, full set)",
			f: func(i, j, k int, x, u, v, w int64) int64 {
				if s := u + v; s < x {
					return s
				}
				return x
			},
			set: gep.Full,
		},
		{
			name: "gaussian elimination (x - u*v, k<i & k<j)",
			f:    func(i, j, k int, x, u, v, w int64) int64 { return x - u*v },
			set:  gep.GaussianSet,
		},
		{
			name: "running sum (x+u+v+w, full set)",
			f:    func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w },
			set:  gep.Full,
		},
		{
			name: "xor mix (x^u^v, predicate set)",
			f:    func(i, j, k int, x, u, v, w int64) int64 { return x ^ u ^ v },
			set:  gep.Predicate(func(i, j, k int) bool { return (i+j)%2 == k%2 }),
		},
	}

	const n = 64
	for _, nest := range nests {
		report := gep.CheckLegality(nest.f, nest.set, 16, 8, 42, nil)
		choice := "I-GEP (in-place, aggressive)"
		if !report.Legal {
			choice = "C-GEP (extra space, always legal)"
		}
		fmt.Printf("%-45s -> %s\n   evidence: %v\n", nest.name, choice, report)

		// Execute with the chosen transformation and check against the
		// reference loop nest.
		in := gep.NewMatrix[int64](n)
		in.Apply(func(i, j int, _ int64) int64 { return int64((i*37+j*11)%100 - 50) })
		want := in.Clone()
		gep.Iterative[int64](want, nest.f, nest.set)
		got := in.Clone()
		if report.Legal {
			gep.CacheOblivious[int64](got, nest.f, nest.set, gep.WithBaseSize[int64](16))
		} else {
			gep.General[int64](got, nest.f, nest.set, gep.WithBaseSize[int64](16))
		}
		if !got.EqualFunc(want, func(a, b int64) bool { return a == b }) {
			panic(nest.name + ": transformed loop diverged from reference!")
		}
		fmt.Printf("   transformed output == reference at n=%d ✓\n\n", n)
	}
}
