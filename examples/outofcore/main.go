// Out-of-core demo: run Floyd-Warshall on a matrix that lives on disk
// under a deliberately tiny RAM budget — the paper's Figure 7 setting.
// The same engine code runs unchanged; only the Grid implementation
// differs. Compare the page traffic of the iterative loop nest against
// cache-oblivious I-GEP, element-at-a-time and tile-granular.
package main

import (
	"fmt"
	"log"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/ooc"
)

func main() {
	const (
		n         = 128      // 128x128 float64 = 128 KB on disk
		pageSize  = 4096     // B
		cacheSize = 16 << 10 // M: only 1/8 of the matrix fits in RAM
	)
	minPlus := core.MinPlus[float64]{}

	// Build the input once in core.
	in := matrix.NewSquare[float64](n)
	in.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		return float64((i*31+j*17)%255 + 1)
	})

	type result struct {
		name          string
		reads, writes int64 // page or tile transfers
		wait          string
	}
	var results []result
	var reference *matrix.Dense[float64]

	run := func(name string, layout ooc.LayoutFunc, algo func(m *ooc.Matrix) error) {
		store, err := ooc.Create("", ooc.Config{PageSize: pageSize, CacheSize: cacheSize})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		m := ooc.NewMatrix(store, n, 0, layout)
		if err := m.Load(in); err != nil {
			log.Fatal(err)
		}
		store.ResetStats()
		if err := algo(m); err != nil {
			log.Fatal(err)
		}
		st := store.Stats()
		results = append(results, result{name,
			st.PageReads + st.TileReads, st.PageWrites + st.TileWrites,
			store.IOTime().String()})
		out, err := m.Unload()
		if err != nil {
			log.Fatal(err)
		}
		if reference == nil {
			reference = out
		} else if !out.EqualFunc(reference, func(a, b float64) bool { return a == b }) {
			log.Fatalf("%s computed different distances!", name)
		}
	}

	run("iterative GEP", ooc.RowMajorLayout, func(m *ooc.Matrix) error {
		core.RunGEP[float64](m, minPlus, core.Full{})
		return m.Store().Err()
	})
	run("I-GEP", ooc.MortonTiledLayout(16), func(m *ooc.Matrix) error {
		core.RunIGEP[float64](m, minPlus, core.Full{}, core.WithBaseSize[float64](16))
		return m.Store().Err()
	})
	run("I-GEP tiles", ooc.MortonTiledLayout(16), func(m *ooc.Matrix) error {
		return ooc.RunIGEP(m, minPlus, core.Full{}, ooc.RunOptions{Prefetch: true})
	})

	fmt.Printf("out-of-core Floyd-Warshall, n=%d, B=%d B, M=%d KB (matrix %d KB)\n\n",
		n, pageSize, cacheSize>>10, n*n*8>>10)
	fmt.Printf("%-14s  %12s  %12s  %16s\n", "algorithm", "reads", "writes", "modeled I/O wait")
	for _, r := range results {
		fmt.Printf("%-14s  %12d  %12d  %16s\n", r.name, r.reads, r.writes, r.wait)
	}
	fmt.Println("\nall three algorithms produced identical distances ✓")
	fmt.Println("(the paper's Figure 7: GEP waits on I/O orders of magnitude longer,")
	fmt.Println(" and the tile runtime removes the per-element CPU overhead on top)")
}
