// Solve a dense linear system A·x = b — a 1-D Poisson-style problem
// with a dense coupling term, the kind of system direct solvers
// target — using cache-oblivious LU decomposition, then verify the
// residual and compare against the cache-aware tiled factorization.
package main

import (
	"fmt"
	"math"

	"gep"
	"gep/internal/linalg"
)

func main() {
	const n = 500 // deliberately not a power of two; the API pads

	// A = tridiagonal Poisson stencil + a small dense smoother; the
	// result is strictly diagonally dominant, so elimination without
	// pivoting is stable.
	a := gep.NewMatrix[float64](n)
	a.Apply(func(i, j int, _ float64) float64 {
		switch {
		case i == j:
			return 4
		case i == j+1 || j == i+1:
			return -1
		default:
			return 1 / float64(n) / (1 + math.Abs(float64(i-j)))
		}
	})

	// Manufactured solution: x*_i = sin(i/10), b = A·x*.
	xStar := make([]float64, n)
	for i := range xStar {
		xStar[i] = math.Sin(float64(i) / 10)
	}
	b := linalg.MatVec(a, xStar)

	// Factor + solve through the public API (A is overwritten with LU).
	orig := a.Clone()
	x := gep.Solve(a, b)

	worst := 0.0
	for i := range x {
		if d := math.Abs(x[i] - xStar[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("n=%d dense system solved with cache-oblivious LU\n", n)
	fmt.Printf("max |x - x*|          : %.3g\n", worst)
	fmt.Printf("residual max|Ax-b|    : %.3g\n", linalg.Residual(orig, x, b))

	// Cross-check: the cache-aware tiled factorization (the BLAS-style
	// comparator from the paper's Figure 10) gives the same factors.
	padded := gep.Pad(orig, 0, 1)
	linalg.LUTiled(padded, 64)
	tiled := gep.Crop(padded, n)
	x2 := linalg.SolveLU(tiled, b)
	diff := 0.0
	for i := range x {
		if d := math.Abs(x[i] - x2[i]); d > diff {
			diff = d
		}
	}
	fmt.Printf("cache-aware vs cache-oblivious solution gap: %.3g\n", diff)
	if worst > 1e-8 || diff > 1e-8 {
		panic("solver accuracy regression")
	}
	fmt.Println("ok ✓")
}
