// All-pairs shortest paths on a road-network-style graph: build a
// random geometric-ish city graph, solve it with cache-oblivious
// Floyd-Warshall through the public API, verify against Dijkstra, and
// print a reconstructed route.
package main

import (
	"fmt"

	"gep"
	"gep/internal/apsp"
)

func main() {
	// A sparse directed "city" graph: 200 intersections, ~6 roads each.
	const n = 200
	g := apsp.Random(n, 6.0/float64(n), 90, 42)
	fmt.Printf("city graph: %d intersections, %d one-way roads\n", g.N, g.Edges())

	// Distance matrix -> cache-oblivious Floyd-Warshall via the facade
	// (handles the non-power-of-two size by padding internally).
	d := g.DistanceMatrix()
	gep.FloydWarshall(d)

	// Independent verification with Dijkstra from every source.
	oracle := apsp.AllPairsDijkstra(g)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d.At(i, j) != oracle.At(i, j) {
				panic(fmt.Sprintf("mismatch at (%d,%d): %g vs %g", i, j, d.At(i, j), oracle.At(i, j)))
			}
		}
	}
	fmt.Println("verified against Dijkstra from all sources ✓")

	// Connectivity stats.
	reachable, total := 0, 0
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			total++
			if v := d.At(i, j); v != apsp.Inf {
				reachable++
				sum += v
			}
		}
	}
	fmt.Printf("reachable pairs: %d/%d, mean distance %.1f\n", reachable, total, sum/float64(reachable))

	// Reconstruct one concrete route.
	for u := 0; u < n; u++ {
		found := false
		for v := 0; v < n; v++ {
			if u != v && d.At(u, v) != apsp.Inf {
				path := apsp.Path(g, d, u, v)
				fmt.Printf("route %d -> %d (length %g): %v\n", u, v, d.At(u, v), path)
				found = true
				break
			}
		}
		if found {
			break
		}
	}
}
