package gep_test

// One testing.B benchmark per table and figure of the paper (§4), each
// delegating to the experiment harness at Small scale, plus
// per-kernel microbenchmarks and the ablation benches of DESIGN.md §5.
//
// Regenerate everything textually with:
//
//	go run ./cmd/gep-bench -scale full all
//
// or through the benchmarks:
//
//	go test -bench=. -benchmem

import (
	"io"
	"math/rand"
	"testing"

	"gep"
	"gep/internal/apsp"
	"gep/internal/bench"
	"gep/internal/linalg"
	"gep/internal/matrix"
	"gep/internal/sched"
)

// runExperiment executes a registered experiment once per iteration.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, ok := bench.Get(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, bench.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_TheoremCheck(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkTable2_Machine(b *testing.B)         { runExperiment(b, "table2") }
func BenchmarkFig7a_OutOfCoreVsM(b *testing.B)     { runExperiment(b, "fig7a") }
func BenchmarkFig7b_OutOfCoreVsMB(b *testing.B)    { runExperiment(b, "fig7b") }
func BenchmarkFig8_InCoreFW(b *testing.B)          { runExperiment(b, "fig8") }
func BenchmarkFig9_IGEPvsCGEP(b *testing.B)        { runExperiment(b, "fig9") }
func BenchmarkFig10_GaussianVsTiled(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11_MultiplyVsTiled(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12_ParallelSpeedup(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkAblation_BaseSize(b *testing.B)      { runExperiment(b, "ablation-base") }
func BenchmarkAblation_Layout(b *testing.B)        { runExperiment(b, "ablation-layout") }
func BenchmarkAblation_Pruning(b *testing.B)       { runExperiment(b, "ablation-prune") }
func BenchmarkAblation_ParallelGrain(b *testing.B) { runExperiment(b, "ablation-grain") }
func BenchmarkLemma31_ParallelCaches(b *testing.B) { runExperiment(b, "lemma31") }

// ---- per-kernel microbenchmarks -----------------------------------

const microN = 256

func randSquare(n int, seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare[float64](n)
	m.Apply(func(i, j int, _ float64) float64 { return rng.Float64() })
	return m
}

func BenchmarkMulNaive(b *testing.B) {
	a, bb := randSquare(microN, 1), randSquare(microN, 2)
	c := matrix.NewSquare[float64](microN)
	b.SetBytes(int64(linalg.MulFlops(microN)))
	for i := 0; i < b.N; i++ {
		linalg.MulNaive(c, a, bb)
	}
}

func BenchmarkMulIGEP(b *testing.B) {
	a, bb := randSquare(microN, 1), randSquare(microN, 2)
	c := matrix.NewSquare[float64](microN)
	b.SetBytes(int64(linalg.MulFlops(microN)))
	for i := 0; i < b.N; i++ {
		linalg.MulIGEP(c, a, bb, 64)
	}
}

func BenchmarkMulTiled(b *testing.B) {
	a, bb := randSquare(microN, 1), randSquare(microN, 2)
	c := matrix.NewSquare[float64](microN)
	b.SetBytes(int64(linalg.MulFlops(microN)))
	for i := 0; i < b.N; i++ {
		linalg.MulTiled(c, a, bb, 64)
	}
}

func BenchmarkMulIGEPParallel(b *testing.B) {
	a, bb := randSquare(microN, 1), randSquare(microN, 2)
	c := matrix.NewSquare[float64](microN)
	b.SetBytes(int64(linalg.MulFlops(microN)))
	for i := 0; i < b.N; i++ {
		linalg.MulIGEPParallel(c, a, bb, 64, 128)
	}
}

func benchLU(b *testing.B, factor func(*matrix.Dense[float64])) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	in := matrix.NewSquare[float64](microN)
	in.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return float64(2 * microN)
		}
		return rng.Float64()
	})
	b.SetBytes(int64(linalg.GEFlops(microN)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := in.Clone()
		b.StartTimer()
		factor(m)
	}
}

func BenchmarkLUGEP(b *testing.B) { benchLU(b, linalg.LUGEP) }
func BenchmarkLUIGEP(b *testing.B) {
	benchLU(b, func(m *matrix.Dense[float64]) { linalg.LUIGEP(m, 64) })
}
func BenchmarkLUTiled(b *testing.B) {
	benchLU(b, func(m *matrix.Dense[float64]) { linalg.LUTiled(m, 64) })
}

func benchFW(b *testing.B, run func(*matrix.Dense[float64])) {
	b.Helper()
	g := apsp.Random(microN, 0.3, 1000, 4)
	in := g.DistanceMatrix()
	b.SetBytes(int64(apsp.FWFlops(microN)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := in.Clone()
		b.StartTimer()
		run(d)
	}
}

func BenchmarkFWGEP(b *testing.B)  { benchFW(b, apsp.FWGEP) }
func BenchmarkFWIGEP(b *testing.B) { benchFW(b, func(d *matrix.Dense[float64]) { apsp.FWIGEP(d, 64) }) }

// BenchmarkFacadeGeneric measures the generic-engine overhead relative
// to the specialized kernels (interface dispatch + closure calls).
func BenchmarkFacadeGeneric(b *testing.B) {
	g := apsp.Random(128, 0.3, 1000, 5)
	in := g.DistanceMatrix()
	minPlus := gep.UpdateFunc[float64](func(i, j, k int, x, u, v, w float64) float64 {
		if s := u + v; s < x {
			return s
		}
		return x
	})
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := in.Clone()
		b.StartTimer()
		gep.CacheOblivious[float64](d, minPlus, gep.Full, gep.WithBaseSize[float64](32))
	}
}

// BenchmarkSchedFlatten measures DAG construction and scheduling cost
// for the Figure 12 simulation itself.
func BenchmarkSchedFlatten(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan := sched.BuildPlan(sched.FW, 512, 32)
		d := sched.Flatten(plan)
		_ = sched.Schedule(d, 8)
	}
}
